"""Span reconstruction and latency attribution (repro.obs.spans).

Two layers of coverage: synthetic flat-dict traces with hand-placed
timestamps pin the exact phase arithmetic, and traced integration runs
— normal-case, deterministic drops with peer recovery, whole-shard
drops with FC escalation, client retransmissions — check that
adversarial event streams still produce well-formed span forests whose
phase decomposition telescopes exactly to the end-to-end latency.
"""

import json

import pytest

from repro.baselines.common import WorkloadOp
from repro.obs import (
    PHASES,
    Span,
    analyze_spans,
    analyze_trace,
    build_spans,
    export_chrome_trace,
)

from conftest import drive, make_ycsb_cluster, submit_and_wait


# -- synthetic traces: exact phase arithmetic ------------------------------

def synthetic_commit_trace():
    """One txn, one request (cause 1), two replicas, hand-placed
    timestamps. The fastest chain is r0's; r1's reply completes the
    quorum 4us later."""
    return [
        {"ts": 0.0, "kind": "txn_submit", "node": "c0", "cause": 1,
         "txn": "c0:1", "retry": 0, "participants": [0]},
        {"ts": 0.0, "kind": "send", "node": "c0", "cause": 1},
        {"ts": 10e-6, "kind": "deliver", "node": "seq", "cause": 1},
        {"ts": 13e-6, "kind": "stamp", "node": "seq", "cause": 1,
         "epoch": 1, "stamps": [[0, 1]], "queue_delay": 2e-6},
        {"ts": 23e-6, "kind": "deliver", "node": "r0", "cause": 1},
        {"ts": 24e-6, "kind": "deliver", "node": "r1", "cause": 1},
        {"ts": 26e-6, "kind": "reply", "node": "r0", "cause": 2,
         "txn": "c0:1", "shard": 0, "replica": 0, "is_dl": True,
         "committed": True},
        {"ts": 30e-6, "kind": "reply", "node": "r1", "cause": 3,
         "txn": "c0:1", "shard": 0, "replica": 1, "is_dl": False,
         "committed": True},
        {"ts": 36e-6, "kind": "deliver", "node": "c0", "cause": 2},
        {"ts": 40e-6, "kind": "deliver", "node": "c0", "cause": 3},
        {"ts": 40e-6, "kind": "txn_complete", "node": "c0", "cause": -1,
         "txn": "c0:1", "committed": True, "timedout": False,
         "retries": 0},
    ]


def test_synthetic_phase_decomposition_is_exact():
    forest = build_spans(synthetic_commit_trace())
    (txn,) = forest.txns
    assert txn.complete and txn.committed and not txn.timedout
    assert txn.end_to_end == pytest.approx(40e-6)
    # Fastest chain goes through r0: submit 0 -> seq 10 -> stamp 13 ->
    # r0 23 -> reply 26 -> client 36; quorum completes at 40.
    assert txn.phases == pytest.approx({
        "retry_wait": 0.0,
        "client_to_seq": 10e-6,
        "sequencer": 3e-6,
        "seq_to_replica": 10e-6,
        "replica_apply": 3e-6,
        "reply_to_client": 10e-6,
        "quorum_wait": 4e-6,
    })
    assert sum(txn.phases.values()) == pytest.approx(txn.end_to_end)
    # Critical path is r1, whose reply arrived last (lag 4us), measured
    # through its own chain (arrival 24, apply 6, network 10).
    assert txn.critical["node"] == "r1"
    assert txn.critical["is_dl"] is False
    assert txn.critical["lag"] == pytest.approx(4e-6)
    assert txn.critical["phases"]["replica_apply"] == pytest.approx(6e-6)
    assert sum(txn.critical["phases"].values()) \
        == pytest.approx(txn.end_to_end)


def test_synthetic_sequencer_queue_delay_lands_on_span():
    forest = build_spans(synthetic_commit_trace())
    (attempt,) = forest.txns[0].attempts
    (seq_span,) = attempt.find("sequencer")
    assert seq_span.attrs["queue_delay"] == pytest.approx(2e-6)
    report = analyze_spans(forest)
    assert report["sequencer_queue"]["count"] == 1


def test_synthetic_incomplete_txn_not_attributed():
    events = synthetic_commit_trace()[:-1]      # no txn_complete
    forest = build_spans(events)
    (txn,) = forest.txns
    assert not txn.complete and txn.phases is None
    assert forest.attributed() == []
    report = analyze_spans(forest)
    assert report["txns"]["total"] == 1
    assert report["txns"]["attributed"] == 0


def test_synthetic_timeout_marks_but_does_not_attribute():
    events = [
        {"ts": 0.0, "kind": "txn_submit", "node": "c0", "cause": 1,
         "txn": "c0:1", "retry": 0, "participants": [0]},
        {"ts": 5e-3, "kind": "txn_complete", "node": "c0", "cause": -1,
         "txn": "c0:1", "committed": False, "timedout": True,
         "retries": 3},
    ]
    (txn,) = build_spans(events).txns
    assert txn.timedout and txn.retries == 3 and txn.phases is None


def test_span_tree_walk_and_find():
    forest = build_spans(synthetic_commit_trace())
    root = forest.txns[0].as_span()
    names = [s.name for s in root.walk()]
    assert names[0] == "txn" and "attempt" in names
    assert "client_to_seq" in names and "quorum_wait" in names
    assert len(root.find("seq_to_replica")) == 2   # both fan-out copies
    serialized = root.to_dict()
    assert serialized["attrs"]["txn"] == "c0:1"
    assert serialized["children"]


# -- integration: traced runs ----------------------------------------------

def rmw_op(keys, partitioner):
    return WorkloadOp(proc="ycsb_rmw", args={"keys": tuple(keys)},
                      participants=partitioner.participants_for(keys),
                      read_keys=frozenset(keys), write_keys=frozenset(keys))


def test_traced_run_attributes_every_commit():
    cluster = make_ycsb_cluster(n_shards=2, tracing=True)
    client = cluster.make_client()
    for key in range(8):
        submit_and_wait(cluster, client, rmw_op([key], cluster.partitioner))
    submit_and_wait(cluster, client, rmw_op([0, 1], cluster.partitioner))
    forest = build_spans(cluster.tracer.events)
    assert len(forest.txns) == 9
    assert len(forest.attributed()) == 9
    for txn in forest.txns:
        assert txn.committed and not txn.timedout
        assert all(txn.phases[name] >= 0.0 for name in PHASES)
        # The telescoping invariant: phases sum exactly to end-to-end.
        assert sum(txn.phases.values()) == pytest.approx(
            txn.end_to_end, rel=1e-12)
        assert txn.critical is not None
    multi = forest.by_label[forest.txns[-1].txn]
    assert multi.participants == (0, 1)


def test_traced_run_analysis_report_is_consistent():
    cluster = make_ycsb_cluster(n_shards=2, tracing=True)
    client = cluster.make_client()
    for key in range(10):
        submit_and_wait(cluster, client,
                        rmw_op([key, key + 1], cluster.partitioner))
    report = analyze_trace(cluster.tracer.events)
    assert report["txns"]["attributed"] == report["txns"]["total"] == 10
    shares = [report["phases"][name]["share"] for name in PHASES]
    assert sum(shares) == pytest.approx(1.0)
    consistency = report["consistency"]
    assert consistency["mean_phase_sum_us"] == pytest.approx(
        consistency["mean_e2e_us"], rel=1e-9)
    assert abs(consistency["residual_us"]) < 1e-6
    assert sum(report["critical_path"]["by_member"].values()) == 10
    assert report["by_group"]   # per-participant-set split present


def test_dropped_copy_recovered_from_peer_shows_in_tree():
    cluster = make_ycsb_cluster(tracing=True)
    victim = cluster.replicas[0][1]
    cluster.network.drop_filter = lambda pkt: (
        pkt.multistamp is not None and pkt.dst == victim.address
        and cluster.loop.now < 0.5e-3)
    client = cluster.make_client()
    submit_and_wait(cluster, client, rmw_op([0], cluster.partitioner))
    submit_and_wait(cluster, client, rmw_op([0], cluster.partitioner))
    drive(cluster, 0.02)
    assert victim.drops_recovered_from_peer >= 1
    forest = build_spans(cluster.tracer.events)
    # Both txns committed and attributed despite the dropped copies...
    assert len(forest.attributed()) == 2
    # ...the drops are visible as markers on the attempt subtrees...
    dropped = [s for t in forest.txns for a in t.attempts
               for s in a.find("dropped")]
    assert dropped and all(s.node == victim.address for s in dropped)
    # ...and the peer recovery is a span attached to the missed txn.
    recoveries = [r for t in forest.txns for r in t.recoveries]
    assert any(r.attrs["outcome"] == "peer" and r.node == victim.address
               for r in recoveries)
    report = analyze_spans(forest)
    assert report["recovery"]["count"] >= 1
    assert report["recovery"]["fc_escalated"] == 0


def test_whole_shard_drop_escalates_to_fc_span():
    cluster = make_ycsb_cluster(n_shards=2, tracing=True)
    part = cluster.partitioner
    shard1 = {r.address for r in cluster.replicas[1]}

    def drop_first(pkt):
        return (pkt.multistamp is not None and pkt.dst in shard1
                and pkt.multistamp.seq_for(1) == 1)

    cluster.network.drop_filter = drop_first
    client = cluster.make_client()
    done = []
    client.submit(rmw_op([0, 1], part), done.append)
    drive(cluster, 1e-3)
    cluster.network.drop_filter = None
    client.submit(rmw_op([3], part), done.append)
    drive(cluster, 0.1)
    assert len(done) == 2 and all(r.committed for r in done)
    assert cluster.fc.finds_resolved >= 1
    forest = build_spans(cluster.tracer.events)
    escalations = [s for t in forest.txns for r in t.recoveries
                   for s in r.find("fc_escalation")] \
        + [s for o in forest.orphans for s in o.find("fc_escalation")]
    assert escalations
    assert any(s.attrs["outcome"] == "fc_found" for s in escalations)
    report = analyze_spans(forest)
    assert report["recovery"]["fc_escalated"] >= 1


def test_client_retry_becomes_second_attempt_with_retry_wait():
    cluster = make_ycsb_cluster(tracing=True)
    # Lose the entire first request (no replica or sequencer sees it)
    # so the client's 1ms retransmission timer fires.
    cluster.network.drop_filter = lambda pkt: (
        pkt.groupcast is not None and cluster.loop.now < 0.5e-3)
    client = cluster.make_client()
    result = submit_and_wait(cluster, client,
                             rmw_op([0], cluster.partitioner), timeout=0.1)
    assert result.committed
    forest = build_spans(cluster.tracer.events)
    (txn,) = forest.txns
    assert txn.retries >= 1
    assert len(txn.attempts) == txn.retries + 1
    assert txn.attempts[1].attrs["retry"] == 1
    assert txn.phases is not None
    # The committed chain started at the retransmission, so the wait
    # for the retry timer is its own phase — and the sum still
    # telescopes to the full submit-to-commit latency.
    assert txn.phases["retry_wait"] >= 1e-3
    assert sum(txn.phases.values()) == pytest.approx(txn.end_to_end,
                                                     rel=1e-12)


# -- Chrome trace export ---------------------------------------------------

def test_chrome_export_structure(tmp_path):
    cluster = make_ycsb_cluster(n_shards=2, tracing=True)
    client = cluster.make_client()
    for key in range(3):
        submit_and_wait(cluster, client, rmw_op([key], cluster.partitioner))
    forest = build_spans(cluster.tracer.events)
    path = str(tmp_path / "spans.trace.json")
    count = export_chrome_trace(forest, path)
    with open(path) as handle:
        payload = json.load(handle)
    events = payload["traceEvents"]
    assert len(events) == count
    spans = [e for e in events if e["ph"] == "X"]
    meta = [e for e in events if e["ph"] == "M"]
    assert spans and meta
    assert all(e["dur"] >= 0.0 for e in spans)
    # One process per transaction, named by its txn label.
    process_names = {e["args"]["name"] for e in meta
                     if e["name"] == "process_name"}
    assert process_names == {t.txn for t in forest.txns}
    # Every span's (pid, tid) has a thread_name mapping it to a node.
    named_tracks = {(e["pid"], e["tid"]) for e in meta
                    if e["name"] == "thread_name"}
    assert {(e["pid"], e["tid"]) for e in spans} <= named_tracks


def test_chrome_export_handles_orphan_recoveries(tmp_path):
    orphan = Span("recovery", 1e-3, 2e-3, "r0",
                  attrs={"slot": [1, 0, 5], "outcome": "unresolved"})
    forest = build_spans([])
    forest.orphans.append(orphan)
    path = str(tmp_path / "orphans.trace.json")
    export_chrome_trace(forest, path)
    payload = json.load(open(path))
    names = [e.get("args", {}).get("name") for e in payload["traceEvents"]
             if e["ph"] == "M" and e["name"] == "process_name"]
    assert names == ["unattached recoveries"]


def test_chain_sequencer_run_keeps_phase_decomposition_exact():
    """With a 3-node chain fronting the system, the 7-phase
    decomposition still telescopes: the head emits the stamp event, the
    tail's released packet keeps the original causal id, and the
    head->tail propagation shows up inside seq_to_replica rather than
    breaking the sum."""
    cluster = make_ycsb_cluster(n_shards=2, tracing=True,
                                sequencer_chain=3)
    client = cluster.make_client()
    for key in range(8):
        submit_and_wait(cluster, client, rmw_op([key], cluster.partitioner))
    submit_and_wait(cluster, client, rmw_op([0, 1], cluster.partitioner))
    forest = build_spans(cluster.tracer.events)
    assert len(forest.txns) == 9
    assert len(forest.attributed()) == 9
    for txn in forest.txns:
        assert txn.committed and not txn.timedout
        assert all(txn.phases[name] >= 0.0 for name in PHASES)
        assert sum(txn.phases.values()) == pytest.approx(
            txn.end_to_end, rel=1e-12)
        # Chain replication is two extra in-network hops before the
        # release; that cost must be attributed, not lost.
        assert txn.phases["seq_to_replica"] > 0.0
