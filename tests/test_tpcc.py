"""Unit + integration tests for the TPC-C workload."""

import pytest

from repro.errors import TransactionAborted
from repro.sim.randomness import SplitRandom
from repro.store.kv import KVStore, MISSING
from repro.store.procedures import ProcedureRegistry, TxnContext
from repro.workloads.tpcc import (
    TPCCConfig,
    TPCCWorkload,
    load_tpcc,
    register_tpcc_procedures,
    tpcc_partitioner,
)
from repro.workloads.tpcc.schema import (
    TPCCScale,
    customer_key,
    district_key,
    item_key,
    new_order_key,
    order_key,
    stock_key,
    warehouse_key,
)

SCALE = TPCCScale(n_warehouses=4, districts_per_warehouse=2,
                  customers_per_district=5, n_items=20)


def loaded_store(n_shards=1):
    """One store per shard, fully loaded."""
    part = tpcc_partitioner(n_shards)
    stores = {s: [KVStore()] for s in range(n_shards)}
    load_tpcc(stores, part, SCALE)
    return part, stores


def registry():
    reg = ProcedureRegistry()
    register_tpcc_procedures(reg)
    return reg


def ctx_for(stores, part, shard):
    return TxnContext(stores[shard][0], shard=shard,
                      owns=part.owns_fn(shard))


# -- loader ----------------------------------------------------------------

def test_loader_row_counts():
    part, stores = loaded_store()
    store = stores[0][0]
    n_rows = len(store)
    expected = (SCALE.n_items                       # items
                + SCALE.n_warehouses                 # warehouses
                + SCALE.n_warehouses * SCALE.n_items  # stock
                + SCALE.n_warehouses * SCALE.districts_per_warehouse
                + (SCALE.n_warehouses * SCALE.districts_per_warehouse
                   * SCALE.customers_per_district))
    assert n_rows == expected


def test_items_replicated_to_every_shard():
    part, stores = loaded_store(n_shards=2)
    for shard in (0, 1):
        assert stores[shard][0].get(item_key(1)) is not MISSING
    # Warehouse rows live only with their owner shard.
    assert stores[0][0].get(warehouse_key(0)) is not MISSING
    assert stores[1][0].get(warehouse_key(0)) is MISSING
    assert stores[1][0].get(warehouse_key(1)) is not MISSING


# -- new_order ----------------------------------------------------------------

def new_order_args(w=0, d=0, c=1, items=((1, 0, 3), (2, 0, 2)),
                   invalid=False):
    return {"w_id": w, "d_id": d, "c_id": c, "items": tuple(items),
            "entry_d": 1, "invalid_item": invalid}


def test_new_order_inserts_rows_and_advances_oid():
    part, stores = loaded_store()
    reg = registry()
    result = reg.execute("tpcc_new_order", ctx_for(stores, part, 0),
                         new_order_args())
    store = stores[0][0]
    assert result["o_id"] == 1
    assert store.get(district_key(0, 0))["next_o_id"] == 2
    assert store.get(order_key(0, 0, 1))["ol_cnt"] == 2
    assert store.get(new_order_key(0, 0, 1)) == 1
    assert result["total"] > 0


def test_new_order_decrements_stock_with_wraparound():
    part, stores = loaded_store()
    reg = registry()
    store = stores[0][0]
    before = store.get(stock_key(0, 1))["quantity"]
    reg.execute("tpcc_new_order", ctx_for(stores, part, 0),
                new_order_args(items=((1, 0, 5),)))
    after = store.get(stock_key(0, 1))["quantity"]
    assert after == before - 5 or after == before - 5 + 91


def test_new_order_remote_stock_updates_remote_shard_only():
    part, stores = loaded_store(n_shards=2)
    reg = registry()
    args = new_order_args(w=0, items=((1, 1, 4),))  # supply warehouse 1
    # Execute the same procedure on both shards, as Eris would.
    r0 = reg.execute("tpcc_new_order", ctx_for(stores, part, 0), args)
    r1 = reg.execute("tpcc_new_order", ctx_for(stores, part, 1), args)
    assert r0["o_id"] == 1 and r1 == {}
    stock = stores[1][0].get(stock_key(1, 1))
    assert stock["remote_cnt"] == 1
    assert stores[0][0].get(stock_key(0, 1))["ytd"] == 0


def test_new_order_invalid_item_aborts_deterministically():
    part, stores = loaded_store()
    reg = registry()
    with pytest.raises(TransactionAborted):
        reg.execute("tpcc_new_order", ctx_for(stores, part, 0),
                    new_order_args(invalid=True))


# -- payment ----------------------------------------------------------------

def test_payment_updates_ytds_and_balance():
    part, stores = loaded_store()
    reg = registry()
    store = stores[0][0]
    w_ytd = store.get(warehouse_key(0))["ytd"]
    balance = store.get(customer_key(0, 0, 1))["balance"]
    result = reg.execute("tpcc_payment", ctx_for(stores, part, 0),
                         {"w_id": 0, "d_id": 0, "c_w_id": 0, "c_d_id": 0,
                          "c_id": 1, "amount": 100.0})
    assert store.get(warehouse_key(0))["ytd"] == w_ytd + 100.0
    assert result["balance"] == balance - 100.0


def test_payment_remote_customer_split_across_shards():
    part, stores = loaded_store(n_shards=2)
    reg = registry()
    args = {"w_id": 0, "d_id": 0, "c_w_id": 1, "c_d_id": 1, "c_id": 2,
            "amount": 50.0}
    reg.execute("tpcc_payment", ctx_for(stores, part, 0), args)
    reg.execute("tpcc_payment", ctx_for(stores, part, 1), args)
    assert stores[0][0].get(warehouse_key(0))["ytd"] == 300_050.0
    assert stores[1][0].get(customer_key(1, 1, 2))["balance"] == -60.0


def test_payment_bad_credit_updates_data():
    part, stores = loaded_store()
    reg = registry()
    # Customer 0 has credit "BC".
    reg.execute("tpcc_payment", ctx_for(stores, part, 0),
                {"w_id": 0, "d_id": 0, "c_w_id": 0, "c_d_id": 0,
                 "c_id": 0, "amount": 10.0})
    data = stores[0][0].get(customer_key(0, 0, 0))["data"]
    assert data.startswith("0|0|0|10.0|")


# -- order_status / delivery / stock_level --------------------------------

def test_order_status_after_new_order():
    part, stores = loaded_store()
    reg = registry()
    reg.execute("tpcc_new_order", ctx_for(stores, part, 0),
                new_order_args(c=1))
    result = reg.execute("tpcc_order_status", ctx_for(stores, part, 0),
                         {"w_id": 0, "d_id": 0, "c_id": 1})
    assert result["order"] == 1
    assert result["carrier_id"] is None
    assert result["lines"] == 2


def test_order_status_without_orders():
    part, stores = loaded_store()
    reg = registry()
    result = reg.execute("tpcc_order_status", ctx_for(stores, part, 0),
                         {"w_id": 0, "d_id": 0, "c_id": 3})
    assert result["order"] is None


def test_delivery_processes_oldest_order_per_district():
    part, stores = loaded_store()
    reg = registry()
    for d in (0, 1):
        reg.execute("tpcc_new_order", ctx_for(stores, part, 0),
                    new_order_args(d=d, c=2))
    result = reg.execute("tpcc_delivery", ctx_for(stores, part, 0),
                         {"w_id": 0, "carrier_id": 7,
                          "n_districts": SCALE.districts_per_warehouse})
    assert sorted(result["delivered"]) == [(0, 1), (1, 1)]
    store = stores[0][0]
    assert store.get(new_order_key(0, 0, 1)) is MISSING
    assert store.get(order_key(0, 0, 1))["carrier_id"] == 7
    customer = store.get(customer_key(0, 0, 2))
    assert customer["delivery_cnt"] == 1
    assert customer["balance"] > -10.0   # order total credited


def test_delivery_idempotent_when_nothing_pending():
    part, stores = loaded_store()
    reg = registry()
    result = reg.execute("tpcc_delivery", ctx_for(stores, part, 0),
                         {"w_id": 0, "carrier_id": 1,
                          "n_districts": SCALE.districts_per_warehouse})
    assert result["delivered"] == []


def test_stock_level_counts_low_stock():
    part, stores = loaded_store()
    reg = registry()
    reg.execute("tpcc_new_order", ctx_for(stores, part, 0),
                new_order_args(items=((1, 0, 3),)))
    result = reg.execute("tpcc_stock_level", ctx_for(stores, part, 0),
                         {"w_id": 0, "d_id": 0, "threshold": 1000})
    assert result["low_stock"] == 1   # the one recently ordered item
    result2 = reg.execute("tpcc_stock_level", ctx_for(stores, part, 0),
                          {"w_id": 0, "d_id": 0, "threshold": 0})
    assert result2["low_stock"] == 0


# -- generator ----------------------------------------------------------------

def test_generator_mix_roughly_standard():
    config = TPCCConfig(scale=SCALE)
    wl = TPCCWorkload(config, tpcc_partitioner(2), SplitRandom(3))
    counts = {}
    for _ in range(2000):
        op = wl.next_op()
        counts[op.proc] = counts.get(op.proc, 0) + 1
    assert 0.40 < counts["tpcc_new_order"] / 2000 < 0.50
    assert 0.38 < counts["tpcc_payment"] / 2000 < 0.48
    for proc in ("tpcc_order_status", "tpcc_delivery", "tpcc_stock_level"):
        assert 0.02 < counts[proc] / 2000 < 0.07


def test_generator_remote_fraction_drives_distribution():
    config = TPCCConfig(scale=SCALE, remote_fraction=1.0)
    wl = TPCCWorkload(config, tpcc_partitioner(4), SplitRandom(3))
    new_orders = [wl.next_op() for _ in range(400)]
    new_orders = [op for op in new_orders if op.proc == "tpcc_new_order"]
    distributed = [op for op in new_orders if len(op.participants) > 1]
    assert len(distributed) > 0.8 * len(new_orders)


def test_generator_declares_lock_sets():
    config = TPCCConfig(scale=SCALE)
    wl = TPCCWorkload(config, tpcc_partitioner(2), SplitRandom(3))
    for _ in range(100):
        op = wl.next_op()
        if op.proc == "tpcc_new_order":
            w, d = op.args["w_id"], op.args["d_id"]
            assert district_key(w, d) in op.write_keys
            for i_id, supply_w, _ in op.args["items"]:
                assert stock_key(supply_w, i_id) in op.write_keys
        if op.proc == "tpcc_payment":
            assert warehouse_key(op.args["w_id"]) in op.write_keys


def test_generator_invalid_items_rate():
    config = TPCCConfig(scale=SCALE, invalid_item_fraction=0.5)
    wl = TPCCWorkload(config, tpcc_partitioner(2), SplitRandom(3))
    new_orders = [op for op in (wl.next_op() for _ in range(800))
                  if op.proc == "tpcc_new_order"]
    invalid = sum(1 for op in new_orders if op.args["invalid_item"])
    assert 0.3 < invalid / len(new_orders) < 0.7


def test_scale_validation():
    with pytest.raises(ValueError):
        TPCCScale(n_warehouses=0).validate()
