"""Unit + property tests for the lock manager."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.store.locks import (
    LockManager,
    LockMode,
    LockOutcome,
    LockPolicy,
)


def test_grant_when_free():
    lm = LockManager()
    assert lm.request("t1", {"a"}, {"b"}) is LockOutcome.GRANTED
    assert lm.holds_any("t1")
    assert lm.is_locked("b")
    assert lm.is_locked("a", LockMode.WRITE)
    assert not lm.is_locked("a", LockMode.READ)


def test_shared_readers_coexist():
    lm = LockManager()
    assert lm.request("t1", {"a"}, set()) is LockOutcome.GRANTED
    assert lm.request("t2", {"a"}, set()) is LockOutcome.GRANTED


def test_writer_blocks_reader_and_writer():
    lm = LockManager()
    lm.request("t1", set(), {"a"})
    assert lm.request("t2", {"a"}, set()) is LockOutcome.QUEUED
    assert lm.request("t3", set(), {"a"}) is LockOutcome.QUEUED
    assert lm.queue_length() == 2


def test_reader_blocks_writer_not_reader():
    lm = LockManager()
    lm.request("t1", {"a"}, set())
    assert lm.request("t2", set(), {"a"}) is LockOutcome.QUEUED
    assert lm.request("t3", {"a"}, set()) is LockOutcome.GRANTED


def test_release_grants_fifo():
    lm = LockManager()
    order = []
    lm.request("t1", set(), {"a"})
    lm.request("t2", set(), {"a"}, on_grant=lambda: order.append("t2"))
    lm.request("t3", set(), {"a"}, on_grant=lambda: order.append("t3"))
    lm.release_all("t1")
    assert order == ["t2"]
    lm.release_all("t2")
    assert order == ["t2", "t3"]


def test_atomic_all_or_nothing_grant():
    lm = LockManager()
    lm.request("t1", set(), {"a"})
    # t2 needs a AND b; b is free but the grant must be atomic.
    assert lm.request("t2", set(), {"a", "b"}) is LockOutcome.QUEUED
    assert not lm.is_locked("b")
    lm.release_all("t1")
    assert lm.is_locked("b")


def test_wait_die_younger_aborts():
    lm = LockManager()
    lm.request("old", set(), {"a"}, timestamp=1.0)
    outcome = lm.request("young", set(), {"a"}, timestamp=2.0,
                         policy=LockPolicy.WAIT_DIE)
    assert outcome is LockOutcome.ABORTED
    assert lm.aborts == 1


def test_wait_die_older_waits():
    lm = LockManager()
    lm.request("young", set(), {"a"}, timestamp=2.0)
    outcome = lm.request("old", set(), {"a"}, timestamp=1.0,
                         policy=LockPolicy.WAIT_DIE)
    assert outcome is LockOutcome.QUEUED


def test_release_removes_queued_requests():
    lm = LockManager()
    lm.request("t1", set(), {"a"})
    lm.request("t2", set(), {"a"})
    lm.release_all("t2")   # t2 gives up while queued
    lm.release_all("t1")
    assert lm.queue_length() == 0
    assert not lm.is_locked("a")


def test_reacquire_own_keys_is_not_conflict():
    lm = LockManager()
    lm.request("t1", set(), {"a"})
    assert lm.request("t1", {"a"}, {"a"}) is LockOutcome.GRANTED


def test_release_unknown_txn_is_harmless():
    lm = LockManager()
    assert lm.release_all("ghost") == []


def test_cascading_grants_on_release():
    lm = LockManager()
    granted = []
    lm.request("t1", set(), {"a", "b"})
    lm.request("t2", set(), {"a"}, on_grant=lambda: granted.append("t2"))
    lm.request("t3", set(), {"b"}, on_grant=lambda: granted.append("t3"))
    lm.release_all("t1")
    assert sorted(granted) == ["t2", "t3"]


# -- property: mutual exclusion + no lost requests ------------------------

@settings(max_examples=100, deadline=None)
@given(st.lists(
    st.tuples(st.integers(0, 9),                 # txn id
              st.sets(st.integers(0, 4), max_size=3),   # read keys
              st.sets(st.integers(0, 4), max_size=3)),  # write keys
    min_size=1, max_size=20))
def test_lock_invariants_hold_under_random_schedules(requests):
    """After any request/release interleaving: (1) a write-locked key
    has exactly one holder and no readers; (2) every transaction is
    granted, queued, or finished — never lost."""
    lm = LockManager()
    state = {}
    for i, (txn, reads, writes) in enumerate(requests):
        txn_key = (txn, i)
        outcome = lm.request(txn_key, frozenset(reads), frozenset(writes),
                             timestamp=i)
        state[txn_key] = outcome
        # Release every third transaction immediately to churn grants.
        if i % 3 == 2:
            lm.release_all(txn_key)
            state.pop(txn_key)
        # Invariant 1: write-locked keys have one writer, no readers.
        for key, writer in lm._writer.items():
            assert key not in lm._readers or not lm._readers[key]
    for txn_key in list(state):
        lm.release_all(txn_key)
    assert lm.queue_length() == 0
    assert not lm._writer
    assert not lm._readers
