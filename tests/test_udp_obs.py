"""Observability parity on the real-UDP backend.

The simulator's tracing/metrics stack must work unmodified over real
sockets: wall-clock traces feed the same 7-phase span decomposition
(with the PR 3 telescoping invariant intact), the metrics sampler
produces a real-time series, and the always-on flight recorder leaves
a dump on disk when a §6.7 checker fails.
"""

from __future__ import annotations

import pytest

from repro.core.replica import ErisReplica
from repro.errors import InvariantViolation
from repro.harness.udp_smoke import run_udp_smoke
from repro.obs import (
    MetricsRegistry,
    analyze_spans,
    build_spans,
    load_recorder_dump,
    load_series,
    load_trace,
)
from repro.runtime.asyncio_udp import AsyncioUdpRuntime


# -- tracer clock coupling (regression) ------------------------------------

def test_attach_tracer_uses_runtime_clock_never_wall_clock(monkeypatch):
    """Trace timestamps must come from the asyncio loop's monotonic
    clock: a wall-clock step (NTP, DST, a leap smear) must not be able
    to produce negative phase durations. Regression: even a tracer
    built with a bogus clock gets rebound to the runtime's."""
    import time

    monkeypatch.setattr(time, "time", lambda: 1.0e12)
    runtime = AsyncioUdpRuntime(seed=1)
    try:
        from repro.obs import Tracer

        tracer = runtime.attach_tracer(Tracer(clock=lambda: -12345.0))
        assert runtime.tracer is tracer
        before = runtime.now
        event = tracer.record("probe", "n")
        after = runtime.now
        assert before <= event.ts <= after
        assert event.ts != pytest.approx(1.0e12)
        assert event.ts != -12345.0
    finally:
        runtime.stop()


def test_attach_tracer_creates_one_when_not_given():
    runtime = AsyncioUdpRuntime(seed=1)
    try:
        tracer = runtime.attach_tracer()
        assert runtime.tracer is tracer
        # Bound, not equality: the loop clock advances between reads.
        assert abs(tracer.clock() - runtime.now) < 0.01
    finally:
        runtime.stop()


# -- runtime health metrics ------------------------------------------------

def test_instrument_registers_udp_health_metrics():
    from repro.net.endpoint import Node

    class Echo(Node):
        def handle(self, src, message, packet):
            if message != "pong":
                self.send(src, "pong")

    runtime = AsyncioUdpRuntime(seed=2)
    registry = MetricsRegistry()
    runtime.instrument(registry)
    try:
        a = Echo("a", runtime)
        Echo("b", runtime)
        runtime.start()
        a.send("b", "ping")
        assert runtime.run_until(lambda: runtime.packets_delivered >= 2,
                                 timeout=5.0)
        # Give the 5ms lag probe a few periods to fire.
        runtime.run_for(0.03)
        snap = registry.snapshot()
        udp = snap["udp"]
        assert udp["packets_sent"] >= 2
        assert udp["packets_delivered"] >= 2
        assert udp["datagrams_sent"] >= 2
        assert udp["send_errors"] == 0
        assert udp["socket_errors"] == 0
        assert udp["endpoints"] == 2
        # Push histogram saw every datagram.
        assert udp["datagram_bytes"]["count"] == udp["datagrams_sent"]
        # The loop-lag probe runs while the loop runs.
        assert snap["runtime"]["loop_lag"]["count"] >= 1
    finally:
        runtime.stop()


def test_counter_gauges_are_marked_monotone():
    """The sampler's delta/rate treatment keys off the monotone flag;
    the runtime's counter-style gauges must declare it."""
    runtime = AsyncioUdpRuntime(seed=2)
    registry = MetricsRegistry()
    runtime.instrument(registry)
    try:
        flags = {name: getattr(inst, "monotone", None)
                 for comp, name, inst in registry.instruments()
                 if comp == "udp"}
        for name in ("packets_sent", "packets_delivered", "datagrams_sent",
                     "frames_sent", "send_errors", "socket_errors"):
            assert flags[name] is True, name
        assert flags["endpoints"] is False
        assert flags["egress_buffer_bytes"] is False
    finally:
        runtime.stop()


# -- end-to-end: traced smoke run ------------------------------------------

def test_traced_udpsmoke_phases_telescope_exactly(tmp_path):
    """The PR 3 invariant on the real transport: per-transaction phase
    durations, all timestamped by one monotonic loop clock, sum exactly
    to the client-observed end-to-end latency."""
    trace = str(tmp_path / "udp.jsonl")
    result = run_udp_smoke(min_commits=10, n_clients=2,
                           trace_path=trace,
                           recorder_path=str(tmp_path / "fr.jsonl"))
    assert result.checks_passed
    assert result.trace_events > 0
    forest = build_spans(load_trace(trace))
    attributed = forest.attributed()
    assert len(attributed) >= 10
    for txn in attributed:
        assert sum(txn.phases.values()) == pytest.approx(txn.end_to_end)
        assert all(d >= 0 for d in txn.phases.values())
    report = analyze_spans(forest)
    assert report["txns"]["attributed"] == len(attributed)
    assert report["consistency"]["residual_us"] == pytest.approx(0.0)


def test_udpsmoke_exports_metrics_series(tmp_path):
    series = str(tmp_path / "metrics.jsonl")
    result = run_udp_smoke(min_commits=10, n_clients=2,
                           metrics_path=series, metrics_interval=0.02,
                           recorder_path=str(tmp_path / "fr.jsonl"))
    assert result.metrics_samples >= 1
    meta, samples = load_series(series)
    assert meta["backend"] == "asyncio-udp"
    last = samples[-1]["metrics"]
    assert last["udp"]["packets_delivered"]["v"] > 0
    assert last["udp"]["datagram_bytes"]["count"] > 0
    assert "loop_lag" in last["runtime"]


def test_udpsmoke_clean_run_leaves_no_recorder_dump(tmp_path):
    fr = tmp_path / "fr.jsonl"
    result = run_udp_smoke(min_commits=10, n_clients=2,
                           recorder_path=str(fr))
    assert result.checks_passed
    assert result.recorder_dump is None
    assert not fr.exists()


def test_udpsmoke_injected_violation_dumps_flight_recorder(tmp_path):
    """The acceptance-criteria demonstration: a failing §6.7 checker on
    a udpsmoke run leaves the last-N-events window on disk, even though
    full tracing was never requested (ring-only mode)."""
    fr = tmp_path / "fr.jsonl"

    def corrupt_follower_log(cluster):
        import dataclasses

        replicas = [r for r in cluster.replicas[0]
                    if isinstance(r, ErisReplica)]
        victim = next(r for r in replicas if not r.is_dl)
        entry = victim.log.entries()[0]
        flipped = "noop" if entry.kind == "txn" else "txn"
        victim.log._entries[0] = dataclasses.replace(entry, kind=flipped)

    with pytest.raises(InvariantViolation, match="divergence"):
        run_udp_smoke(min_commits=10, n_clients=2,
                      recorder_path=str(fr), recorder_capacity=256,
                      _inject_fault=corrupt_follower_log)
    assert fr.exists()
    header, events = load_recorder_dump(str(fr))
    assert header["origin"] == "run_all_checks"
    assert "divergence" in header["reason"]
    assert 0 < header["recorded"] <= 256
    assert len(events) == header["recorded"]
    # The window holds real packet-lifecycle events from the run.
    assert {"send", "deliver"} & {e["kind"] for e in events}
