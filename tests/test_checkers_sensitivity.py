"""The correctness checkers must actually catch violations: feed them
hand-built inconsistent states and confirm they fire."""

import pytest

from repro.core.messages import TxnRecord
from repro.core.transaction import IndependentTransaction, SlotId, TxnId
from repro.errors import InvariantViolation
from repro.harness.checkers import (
    check_atomicity,
    check_replica_consistency,
    check_serializability,
)
from repro.net.message import MultiStamp

from conftest import make_ycsb_cluster


def inject_txn(replica, seq, txn_id, participants, seqs_by_shard):
    """Append a fabricated transaction entry to a replica's log."""
    txn = IndependentTransaction(txn_id=txn_id, proc="ycsb_read",
                                 args={"key": 0},
                                 participants=participants)
    stamps = tuple(sorted(seqs_by_shard.items()))
    record = TxnRecord(txn=txn, multistamp=MultiStamp(1, stamps))
    replica.log.append_txn(SlotId(replica.shard, 1, seq), record)


def dl(cluster, shard):
    return next(r for r in cluster.replicas[shard] if r.is_dl)


def test_serializability_checker_finds_cross_shard_cycle():
    cluster = make_ycsb_cluster(n_shards=2)
    t1 = TxnId("cx", 1)
    t2 = TxnId("cy", 1)
    # Shard 0 orders t1 < t2; shard 1 orders t2 < t1: a cycle.
    inject_txn(dl(cluster, 0), 1, t1, (0, 1), {0: 1, 1: 2})
    inject_txn(dl(cluster, 0), 2, t2, (0, 1), {0: 2, 1: 1})
    inject_txn(dl(cluster, 1), 1, t2, (0, 1), {0: 2, 1: 1})
    inject_txn(dl(cluster, 1), 2, t1, (0, 1), {0: 1, 1: 2})
    with pytest.raises(InvariantViolation, match="cycle"):
        check_serializability(cluster)


def test_serializability_checker_accepts_consistent_orders():
    cluster = make_ycsb_cluster(n_shards=2)
    t1 = TxnId("cx", 1)
    t2 = TxnId("cy", 1)
    inject_txn(dl(cluster, 0), 1, t1, (0, 1), {0: 1, 1: 1})
    inject_txn(dl(cluster, 0), 2, t2, (0, 1), {0: 2, 1: 2})
    inject_txn(dl(cluster, 1), 1, t1, (0, 1), {0: 1, 1: 1})
    inject_txn(dl(cluster, 1), 2, t2, (0, 1), {0: 2, 1: 2})
    check_serializability(cluster)


def test_atomicity_checker_finds_missing_participant():
    cluster = make_ycsb_cluster(n_shards=2)
    ghost = TxnId("cz", 1)
    inject_txn(dl(cluster, 0), 1, ghost, (0, 1), {0: 1, 1: 1})
    # Shard 1 never logs it.
    with pytest.raises(InvariantViolation, match="missing at participant"):
        check_atomicity(cluster)


def test_consistency_checker_finds_slot_divergence():
    cluster = make_ycsb_cluster(n_shards=1)
    t1 = TxnId("ca", 1)
    t2 = TxnId("cb", 1)
    inject_txn(dl(cluster, 0), 1, t1, (0,), {0: 1})
    other = next(r for r in cluster.replicas[0] if not r.is_dl)
    inject_txn(other, 2, t2, (0,), {0: 2})   # wrong slot at index 1
    with pytest.raises(InvariantViolation, match="divergence"):
        check_replica_consistency(cluster)


def test_checkers_pass_on_fresh_cluster():
    cluster = make_ycsb_cluster(n_shards=2)
    check_serializability(cluster)
    check_atomicity(cluster)
    check_replica_consistency(cluster)


# -- chain-sequencer invariants (trace-backed) -----------------------------

from repro.harness.checkers import (
    check_trace_chain_gapless_logs,
    check_trace_chain_no_stale_release,
    check_trace_chain_stamp_monotonicity,
    run_trace_checks,
)


def release(ts, node, version, stamps, epoch=1):
    return {"ts": ts, "kind": "chain_release", "node": node, "cause": -1,
            "epoch": epoch, "version": version,
            "stamps": [list(s) for s in stamps]}


def repair(ts, version, members, epoch=1):
    return {"ts": ts, "kind": "chain_repair", "node": "controller",
            "cause": -1, "version": version, "members": members,
            "epoch": epoch}


def append(ts, node, shard, index, seq, txn, epoch=1):
    return {"ts": ts, "kind": "log_append", "node": node, "cause": -1,
            "shard": shard, "index": index, "entry_kind": "txn",
            "slot": [shard, epoch, seq], "txn": txn,
            "participants": [shard]}


def test_chain_monotonicity_fires_on_forged_duplicate_release():
    trace = [release(1e-3, "chain1", 1, [(0, 1)]),
             release(2e-3, "chain1", 1, [(0, 2)]),
             release(3e-3, "chain1", 1, [(0, 2)])]     # forged duplicate
    with pytest.raises(InvariantViolation, match="released twice"):
        check_trace_chain_stamp_monotonicity(trace)


def test_chain_monotonicity_fires_on_regression_across_repair():
    # Version 1 released up to seq 5; the repaired chain (version 2)
    # re-assigns seq 3 — the counter merge must have been lost.
    trace = [release(1e-3, "chain2", 1, [(0, 5)]),
             repair(2e-3, 2, ["chain0", "chain1"]),
             release(3e-3, "chain1", 2, [(0, 3)])]
    with pytest.raises(InvariantViolation, match="regression across repair"):
        check_trace_chain_stamp_monotonicity(trace)


def test_chain_monotonicity_accepts_reordered_releases_within_version():
    """Non-FIFO links can invert release order inside one incarnation;
    receivers reorder by the stamp, so this must NOT fire."""
    trace = [release(1e-3, "chain2", 1, [(0, 2)]),
             release(2e-3, "chain2", 1, [(0, 1)]),
             release(3e-3, "chain2", 1, [(1, 1)])]
    check_trace_chain_stamp_monotonicity(trace)


def test_stale_release_checker_fires_after_repair():
    # A spliced-out tail keeps serving version-1 stamps after the
    # controller installed version 2.
    trace = [release(1e-3, "chain2", 1, [(0, 1)]),
             repair(2e-3, 2, ["chain0", "chain1"]),
             release(3e-3, "chain2", 1, [(0, 2)])]     # stale tail
    with pytest.raises(InvariantViolation, match="stale-tail release"):
        check_trace_chain_no_stale_release(trace)


def test_stale_release_checker_accepts_releases_before_repair():
    trace = [release(1e-3, "chain2", 1, [(0, 1)]),
             release(2e-3, "chain2", 1, [(0, 2)]),
             repair(3e-3, 2, ["chain0", "chain1"]),
             release(4e-3, "chain1", 2, [(0, 3)])]
    check_trace_chain_no_stale_release(trace)


def test_gapless_checker_fires_on_skipped_sequence():
    trace = [repair(0.5e-3, 2, ["chain0"]),            # marks a chain trace
             append(1e-3, "eris-r0.0", 0, 1, 1, "c:1"),
             append(2e-3, "eris-r0.0", 0, 2, 2, "c:2"),
             append(3e-3, "eris-r0.0", 0, 3, 4, "c:4")]  # seq 3 skipped
    with pytest.raises(InvariantViolation, match="skipped sequence"):
        check_trace_chain_gapless_logs(trace)


def test_gapless_checker_fires_on_duplicate_sequence():
    trace = [repair(0.5e-3, 2, ["chain0"]),
             append(1e-3, "eris-r0.0", 0, 1, 1, "c:1"),
             append(2e-3, "eris-r0.0", 0, 2, 1, "c:1r")]  # seq 1 twice
    with pytest.raises(InvariantViolation, match="duplicate sequence"):
        check_trace_chain_gapless_logs(trace)


def test_gapless_checker_is_vacuous_without_chain_events():
    """The chain invariants are gated on chain traffic: a plain Eris
    trace with the same gap must not fire (its gaps are judged by the
    existing §6.7 checkers, not the chain ones)."""
    trace = [append(1e-3, "eris-r0.0", 0, 1, 1, "c:1"),
             append(2e-3, "eris-r0.0", 0, 2, 4, "c:4")]
    check_trace_chain_gapless_logs(trace)


def test_chain_checkers_accept_a_clean_chain_trace():
    trace = [release(1e-3, "chain2", 1, [(0, 1), (1, 1)]),
             append(1.2e-3, "eris-r0.0", 0, 1, 1, "c:1"),
             append(1.2e-3, "eris-r1.0", 1, 1, 1, "c:1"),
             repair(2e-3, 2, ["chain0", "chain1"]),
             release(3e-3, "chain1", 2, [(0, 2)]),
             append(3.2e-3, "eris-r0.0", 0, 2, 2, "c:2")]
    run_trace_checks(trace)
