"""The correctness checkers must actually catch violations: feed them
hand-built inconsistent states and confirm they fire."""

import pytest

from repro.core.messages import TxnRecord
from repro.core.transaction import IndependentTransaction, SlotId, TxnId
from repro.errors import InvariantViolation
from repro.harness.checkers import (
    check_atomicity,
    check_replica_consistency,
    check_serializability,
)
from repro.net.message import MultiStamp

from conftest import make_ycsb_cluster


def inject_txn(replica, seq, txn_id, participants, seqs_by_shard):
    """Append a fabricated transaction entry to a replica's log."""
    txn = IndependentTransaction(txn_id=txn_id, proc="ycsb_read",
                                 args={"key": 0},
                                 participants=participants)
    stamps = tuple(sorted(seqs_by_shard.items()))
    record = TxnRecord(txn=txn, multistamp=MultiStamp(1, stamps))
    replica.log.append_txn(SlotId(replica.shard, 1, seq), record)


def dl(cluster, shard):
    return next(r for r in cluster.replicas[shard] if r.is_dl)


def test_serializability_checker_finds_cross_shard_cycle():
    cluster = make_ycsb_cluster(n_shards=2)
    t1 = TxnId("cx", 1)
    t2 = TxnId("cy", 1)
    # Shard 0 orders t1 < t2; shard 1 orders t2 < t1: a cycle.
    inject_txn(dl(cluster, 0), 1, t1, (0, 1), {0: 1, 1: 2})
    inject_txn(dl(cluster, 0), 2, t2, (0, 1), {0: 2, 1: 1})
    inject_txn(dl(cluster, 1), 1, t2, (0, 1), {0: 2, 1: 1})
    inject_txn(dl(cluster, 1), 2, t1, (0, 1), {0: 1, 1: 2})
    with pytest.raises(InvariantViolation, match="cycle"):
        check_serializability(cluster)


def test_serializability_checker_accepts_consistent_orders():
    cluster = make_ycsb_cluster(n_shards=2)
    t1 = TxnId("cx", 1)
    t2 = TxnId("cy", 1)
    inject_txn(dl(cluster, 0), 1, t1, (0, 1), {0: 1, 1: 1})
    inject_txn(dl(cluster, 0), 2, t2, (0, 1), {0: 2, 1: 2})
    inject_txn(dl(cluster, 1), 1, t1, (0, 1), {0: 1, 1: 1})
    inject_txn(dl(cluster, 1), 2, t2, (0, 1), {0: 2, 1: 2})
    check_serializability(cluster)


def test_atomicity_checker_finds_missing_participant():
    cluster = make_ycsb_cluster(n_shards=2)
    ghost = TxnId("cz", 1)
    inject_txn(dl(cluster, 0), 1, ghost, (0, 1), {0: 1, 1: 1})
    # Shard 1 never logs it.
    with pytest.raises(InvariantViolation, match="missing at participant"):
        check_atomicity(cluster)


def test_consistency_checker_finds_slot_divergence():
    cluster = make_ycsb_cluster(n_shards=1)
    t1 = TxnId("ca", 1)
    t2 = TxnId("cb", 1)
    inject_txn(dl(cluster, 0), 1, t1, (0,), {0: 1})
    other = next(r for r in cluster.replicas[0] if not r.is_dl)
    inject_txn(other, 2, t2, (0,), {0: 2})   # wrong slot at index 1
    with pytest.raises(InvariantViolation, match="divergence"):
        check_replica_consistency(cluster)


def test_checkers_pass_on_fresh_cluster():
    cluster = make_ycsb_cluster(n_shards=2)
    check_serializability(cluster)
    check_atomicity(cluster)
    check_replica_consistency(cluster)
