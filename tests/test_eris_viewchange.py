"""Integration tests: DL failure and view change (§6.4)."""

from repro.baselines.common import WorkloadOp
from repro.harness.checkers import run_all_checks

from conftest import drive, make_ycsb_cluster, submit_and_wait


def rmw_op(keys, partitioner):
    return WorkloadOp(proc="ycsb_rmw", args={"keys": tuple(keys)},
                      participants=partitioner.participants_for(keys),
                      read_keys=frozenset(keys), write_keys=frozenset(keys))


def kill_dl(cluster, shard):
    dl = next(r for r in cluster.replicas[shard] if r.is_dl)
    dl.crash()
    return dl


def live_dl(cluster, shard):
    return next(r for r in cluster.replicas[shard]
                if not r.crashed and r.is_dl)


def test_new_dl_elected_after_failure():
    cluster = make_ycsb_cluster(n_shards=1)
    client = cluster.make_client()
    submit_and_wait(cluster, client, rmw_op([0], cluster.partitioner))
    old = kill_dl(cluster, 0)
    drive(cluster, 0.2)   # several view-change timeouts
    new = live_dl(cluster, 0)
    assert new.address != old.address
    assert new.view_num >= 1
    assert new.status == "normal"


def test_committed_txns_survive_view_change():
    cluster = make_ycsb_cluster(n_shards=1)
    client = cluster.make_client()
    for _ in range(5):
        submit_and_wait(cluster, client, rmw_op([0], cluster.partitioner))
    kill_dl(cluster, 0)
    drive(cluster, 0.2)
    new = live_dl(cluster, 0)
    # All five increments must be reflected at the new DL.
    assert new.store.get(0) == 5
    txn_entries = [e for e in new.log if e.kind == "txn"]
    assert len(txn_entries) == 5


def test_processing_continues_after_view_change():
    cluster = make_ycsb_cluster(n_shards=1)
    client = cluster.make_client()
    submit_and_wait(cluster, client, rmw_op([0], cluster.partitioner))
    kill_dl(cluster, 0)
    drive(cluster, 0.25)
    result = submit_and_wait(cluster, client,
                             rmw_op([0], cluster.partitioner),
                             timeout=1.0)
    assert result.committed
    assert live_dl(cluster, 0).store.get(0) == 2


def test_view_change_in_one_shard_does_not_stall_others():
    cluster = make_ycsb_cluster(n_shards=2)
    client = cluster.make_client()
    submit_and_wait(cluster, client, rmw_op([0], cluster.partitioner))
    kill_dl(cluster, 0)
    # Shard 1 (key 1) keeps committing immediately.
    result = submit_and_wait(cluster, client,
                             rmw_op([1], cluster.partitioner))
    assert result.committed
    drive(cluster, 0.25)
    run_all_checks(cluster)


def test_multi_shard_txns_after_view_change_stay_serializable():
    cluster = make_ycsb_cluster(n_shards=2)
    clients = [cluster.make_client() for _ in range(4)]
    done = []
    for i in range(20):
        clients[i % 4].submit(rmw_op([i % 4, 4 + i % 3],
                                     cluster.partitioner), done.append)
    drive(cluster, 0.05)
    kill_dl(cluster, 0)
    drive(cluster, 0.25)
    for i in range(20):
        clients[i % 4].submit(rmw_op([i % 4, 4 + i % 3],
                                     cluster.partitioner), done.append)
    drive(cluster, 0.5)
    committed = [r for r in done if r.committed]
    assert len(committed) >= 38
    run_all_checks(cluster)


def test_second_view_change_after_second_failure():
    cluster = make_ycsb_cluster(n_shards=1)
    client = cluster.make_client()
    submit_and_wait(cluster, client, rmw_op([0], cluster.partitioner))
    kill_dl(cluster, 0)
    drive(cluster, 0.25)
    submit_and_wait(cluster, client, rmw_op([0], cluster.partitioner),
                    timeout=1.0)
    # A second failure exceeds f=1: with only one replica left no
    # majority exists, so we only check the first two view changes.
    new = live_dl(cluster, 0)
    assert new.view_num >= 1
    assert new.store.get(0) == 2
