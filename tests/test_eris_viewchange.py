"""Integration tests: DL failure and view change (§6.4)."""

from repro.baselines.common import WorkloadOp
from repro.harness.checkers import run_all_checks

from conftest import drive, make_ycsb_cluster, submit_and_wait


def rmw_op(keys, partitioner):
    return WorkloadOp(proc="ycsb_rmw", args={"keys": tuple(keys)},
                      participants=partitioner.participants_for(keys),
                      read_keys=frozenset(keys), write_keys=frozenset(keys))


def kill_dl(cluster, shard):
    dl = next(r for r in cluster.replicas[shard] if r.is_dl)
    dl.crash()
    return dl


def live_dl(cluster, shard):
    return next(r for r in cluster.replicas[shard]
                if not r.crashed and r.is_dl)


def test_new_dl_elected_after_failure():
    cluster = make_ycsb_cluster(n_shards=1)
    client = cluster.make_client()
    submit_and_wait(cluster, client, rmw_op([0], cluster.partitioner))
    old = kill_dl(cluster, 0)
    drive(cluster, 0.2)   # several view-change timeouts
    new = live_dl(cluster, 0)
    assert new.address != old.address
    assert new.view_num >= 1
    assert new.status == "normal"


def test_committed_txns_survive_view_change():
    cluster = make_ycsb_cluster(n_shards=1)
    client = cluster.make_client()
    for _ in range(5):
        submit_and_wait(cluster, client, rmw_op([0], cluster.partitioner))
    kill_dl(cluster, 0)
    drive(cluster, 0.2)
    new = live_dl(cluster, 0)
    # All five increments must be reflected at the new DL.
    assert new.store.get(0) == 5
    txn_entries = [e for e in new.log if e.kind == "txn"]
    assert len(txn_entries) == 5


def test_processing_continues_after_view_change():
    cluster = make_ycsb_cluster(n_shards=1)
    client = cluster.make_client()
    submit_and_wait(cluster, client, rmw_op([0], cluster.partitioner))
    kill_dl(cluster, 0)
    drive(cluster, 0.25)
    result = submit_and_wait(cluster, client,
                             rmw_op([0], cluster.partitioner),
                             timeout=1.0)
    assert result.committed
    assert live_dl(cluster, 0).store.get(0) == 2


def test_view_change_in_one_shard_does_not_stall_others():
    cluster = make_ycsb_cluster(n_shards=2)
    client = cluster.make_client()
    submit_and_wait(cluster, client, rmw_op([0], cluster.partitioner))
    kill_dl(cluster, 0)
    # Shard 1 (key 1) keeps committing immediately.
    result = submit_and_wait(cluster, client,
                             rmw_op([1], cluster.partitioner))
    assert result.committed
    drive(cluster, 0.25)
    run_all_checks(cluster)


def test_multi_shard_txns_after_view_change_stay_serializable():
    cluster = make_ycsb_cluster(n_shards=2)
    clients = [cluster.make_client() for _ in range(4)]
    done = []
    for i in range(20):
        clients[i % 4].submit(rmw_op([i % 4, 4 + i % 3],
                                     cluster.partitioner), done.append)
    drive(cluster, 0.05)
    kill_dl(cluster, 0)
    drive(cluster, 0.25)
    for i in range(20):
        clients[i % 4].submit(rmw_op([i % 4, 4 + i % 3],
                                     cluster.partitioner), done.append)
    drive(cluster, 0.5)
    committed = [r for r in done if r.committed]
    assert len(committed) >= 38
    run_all_checks(cluster)


def test_second_view_change_after_second_failure():
    cluster = make_ycsb_cluster(n_shards=1)
    client = cluster.make_client()
    submit_and_wait(cluster, client, rmw_op([0], cluster.partitioner))
    kill_dl(cluster, 0)
    drive(cluster, 0.25)
    submit_and_wait(cluster, client, rmw_op([0], cluster.partitioner),
                    timeout=1.0)
    # A second failure exceeds f=1: with only one replica left no
    # majority exists, so we only check the first two view changes.
    new = live_dl(cluster, 0)
    assert new.view_num >= 1
    assert new.store.get(0) == 2


# -- fault matrix: loss / reordering during the view change itself ---------

import pytest
from repro.harness.faults import FaultPlan


def _dl_index(cluster, shard):
    return next(i for i, r in enumerate(cluster.replicas[shard]) if r.is_dl)


@pytest.mark.parametrize("drop_rate", [0.05, 0.2])
def test_view_change_completes_under_packet_loss(drop_rate):
    """Packets lost during the change protocol itself: VIEW-CHANGE /
    VIEW-CHANGE-ACK / START-VIEW are dropped and must be retried until
    the new view forms."""
    cluster = make_ycsb_cluster(n_shards=1, tracing=True)
    client = cluster.make_client()
    for _ in range(3):
        submit_and_wait(cluster, client, rmw_op([0], cluster.partitioner))
    now = cluster.loop.now
    plan = FaultPlan(cluster)
    plan.set_drop_rate_at(now + 1e-3, drop_rate)
    plan.kill_replica_at(now + 2e-3, 0, _dl_index(cluster, 0))
    plan.set_drop_rate_at(now + 0.2, 0.0)     # heal, let it settle
    drive(cluster, 0.6)
    tracer = cluster.tracer
    assert tracer.count("crash") == 1
    assert tracer.count("view_change_start") >= 1
    completes = tracer.select("view_change_complete")
    assert any(e.data.get("role") == "dl" for e in completes)
    new = live_dl(cluster, 0)
    assert new.view_num >= 1 and new.status == "normal"
    assert new.store.get(0) == 3
    run_all_checks(cluster)                   # state + trace invariants


def test_view_change_under_loss_then_processing_resumes():
    cluster = make_ycsb_cluster(n_shards=2, tracing=True)
    client = cluster.make_client()
    for i in range(4):
        submit_and_wait(cluster, client, rmw_op([i], cluster.partitioner))
    now = cluster.loop.now
    plan = FaultPlan(cluster)
    plan.set_drop_rate_at(now + 1e-3, 0.1)
    plan.kill_replica_at(now + 2e-3, 0, _dl_index(cluster, 0))
    plan.set_drop_rate_at(now + 0.2, 0.0)
    drive(cluster, 0.6)
    result = submit_and_wait(cluster, client,
                             rmw_op([0, 1], cluster.partitioner),
                             timeout=1.0)
    assert result.committed
    tracer = cluster.tracer
    assert tracer.count("view_change_complete") >= 1
    # Random loss on the data path exercised drop recovery too.
    summary_drops = tracer.count("drop")
    assert summary_drops > 0
    run_all_checks(cluster)


def test_view_change_with_reordered_links():
    """fifo_links off: packets between two endpoints may arrive in any
    order. The view change (and normal processing around it) must not
    depend on FIFO delivery. Several concurrent clients keep links busy
    enough that jitter actually inverts arrival order."""
    cluster = make_ycsb_cluster(n_shards=1, tracing=True)
    cluster.network.config.fifo_links = False
    cluster.network.config.jitter = 30e-6    # >> back-to-back send gaps
    clients = [cluster.make_client() for _ in range(5)]
    done = []
    # Batched submission: several packets in flight on the SAME link at
    # once, which is what lets jitter invert their arrival order.
    for c in clients:
        for _ in range(8):
            c.submit(rmw_op([0], cluster.partitioner), done.append)
    drive(cluster, 0.05)
    kill_dl(cluster, 0)
    drive(cluster, 0.6)
    new = live_dl(cluster, 0)
    assert new.view_num >= 1 and new.status == "normal"
    committed = [r for r in done if r.committed]
    assert len(committed) >= 5 * 8 - 5       # clients retry through it
    assert new.store.get(0) == len(committed)
    # The tracer actually observed out-of-order deliveries.
    assert cluster.tracer.count("reorder") > 0
    run_all_checks(cluster)
