"""Unit tests for the closed-loop experiment driver itself."""

import pytest

from repro.harness import ExperimentConfig, run_experiment
from repro.sim.randomness import SplitRandom
from repro.workloads import YCSBConfig, YCSBWorkload

from conftest import make_ycsb_cluster


def make_workload(cluster, **kwargs):
    defaults = dict(workload="srw", n_keys=200)
    defaults.update(kwargs)
    return YCSBWorkload(YCSBConfig(**defaults), cluster.partitioner,
                        SplitRandom(9))


def test_warmup_excluded_from_measurements():
    cluster = make_ycsb_cluster(n_keys=200)
    workload = make_workload(cluster)
    result = run_experiment(cluster, workload, ExperimentConfig(
        n_clients=5, warmup=10e-3, duration=10e-3, drain=2e-3))
    # Committed counts only the window; clients ran during warmup too.
    total = sum(c.node.committed_count for c in cluster._clients)
    assert result.committed < total


def test_more_clients_more_throughput_until_saturation():
    light = run_experiment(
        make_ycsb_cluster(n_keys=500, seed=5),
        make_workload(make_ycsb_cluster(n_keys=500, seed=5), n_keys=500),
        ExperimentConfig(n_clients=4, warmup=2e-3, duration=8e-3))
    cluster = make_ycsb_cluster(n_keys=500, seed=5)
    heavy = run_experiment(
        cluster, make_workload(cluster, n_keys=500),
        ExperimentConfig(n_clients=40, warmup=2e-3, duration=8e-3))
    assert heavy.throughput > 2 * light.throughput


def test_closed_loop_clients_stop_at_window_end():
    cluster = make_ycsb_cluster(n_keys=200)
    workload = make_workload(cluster)
    run_experiment(cluster, workload, ExperimentConfig(
        n_clients=5, warmup=2e-3, duration=5e-3, drain=50e-3))
    # After the drain every client is idle: nothing left in flight.
    assert all(c.node.inflight == 0 for c in cluster._clients)


def test_latency_percentiles_ordered():
    cluster = make_ycsb_cluster(n_keys=200)
    result = run_experiment(cluster, make_workload(cluster),
                            ExperimentConfig(n_clients=20, warmup=2e-3,
                                             duration=10e-3))
    assert result.median_latency <= result.mean_latency * 1.5
    assert result.median_latency <= result.p99_latency


def test_result_str_is_readable():
    cluster = make_ycsb_cluster(n_keys=200)
    result = run_experiment(cluster, make_workload(cluster),
                            ExperimentConfig(n_clients=3, warmup=2e-3,
                                             duration=5e-3))
    text = str(result)
    assert "eris" in text and "txn/s" in text


def test_throughput_matches_committed_over_duration():
    cluster = make_ycsb_cluster(n_keys=200)
    result = run_experiment(cluster, make_workload(cluster),
                            ExperimentConfig(n_clients=10, warmup=2e-3,
                                             duration=10e-3))
    assert result.throughput == pytest.approx(
        result.committed / result.duration)
