"""Unit tests for the splittable RNG."""

from repro.sim.randomness import SplitRandom


def test_same_seed_same_stream():
    a = SplitRandom(7)
    b = SplitRandom(7)
    assert [a.random() for _ in range(10)] == [b.random() for _ in range(10)]


def test_different_seeds_differ():
    a = SplitRandom(7)
    b = SplitRandom(8)
    assert [a.random() for _ in range(10)] != [b.random() for _ in range(10)]


def test_split_is_deterministic():
    a = SplitRandom(7).split("network")
    b = SplitRandom(7).split("network")
    assert [a.random() for _ in range(5)] == [b.random() for _ in range(5)]


def test_split_names_are_independent():
    a = SplitRandom(7).split("network")
    b = SplitRandom(7).split("workload")
    assert [a.random() for _ in range(5)] != [b.random() for _ in range(5)]


def test_split_does_not_perturb_parent():
    parent = SplitRandom(7)
    before = parent.random()
    parent2 = SplitRandom(7)
    parent2.split("anything")
    assert parent2.random() == before


def test_uniform_bounds():
    rng = SplitRandom(3)
    for _ in range(100):
        value = rng.uniform(1.0, 2.0)
        assert 1.0 <= value <= 2.0


def test_randrange_bounds():
    rng = SplitRandom(3)
    assert all(0 <= rng.randrange(10) < 10 for _ in range(100))


def test_sample_and_choice():
    rng = SplitRandom(3)
    population = list(range(20))
    sampled = rng.sample(population, 5)
    assert len(set(sampled)) == 5
    assert rng.choice(population) in population


def test_shuffle_preserves_elements():
    rng = SplitRandom(3)
    items = list(range(10))
    rng.shuffle(items)
    assert sorted(items) == list(range(10))
