"""Multi-process UDP cluster: topology, worker runtime, snapshots,
trace-shard merging, the launcher's fault handling, and the end-to-end
process-per-node smoke run."""

from __future__ import annotations

import os
import signal
import socket
import threading

import pytest

from repro.errors import ExperimentError, InvariantViolation
from repro.harness.checkers import run_all_checks
from repro.harness.cluster import ClusterConfig
from repro.harness.snapshot import (
    ReplicaSnapshot,
    SnapshotCluster,
    snapshot_replica,
)
from repro.harness.topology import (
    eris_topology,
    role_addresses,
    topology_roles,
)
from repro.obs import CAUSE_ID_STRIDE, Tracer, load_trace
from repro.obs.trace import merge_trace_shards
from repro.runtime.codec import decode_datagram, encode_message, decode_message
from repro.runtime.udp_mp import (
    RouteInstall,
    WorkerUdpRuntime,
    control_address,
)

from conftest import make_ycsb_cluster


# -- topology / role derivation --------------------------------------------

def test_topology_matches_single_process_address_plan():
    """Worker processes and the single-process builder must derive the
    identical address strings from the same config — those strings are
    what travels in packets."""
    config = ClusterConfig(system="eris", n_shards=2, n_replicas=3,
                           sequencer_chain=3)
    topo = eris_topology(config)
    assert topo.shard_addrs == {0: ["eris-r0.0", "eris-r0.1", "eris-r0.2"],
                                1: ["eris-r1.0", "eris-r1.1", "eris-r1.2"]}
    assert topo.chain_addrs == ("chain0", "chain1", "chain2")
    assert topo.standby_addrs[0] == "seq0"
    assert topo.fc_address == "fc"
    assert topo.controller_address == "controller"
    assert topo.shard_sizes == {0: 3, 1: 3}


def test_topology_roles_cover_every_address_once():
    config = ClusterConfig(system="eris", n_shards=2, n_replicas=3)
    topo = eris_topology(config)
    roles = topology_roles(topo)
    # 6 replicas + standby sequencers + controller + fc, no chain.
    assert len(roles) == 6 + len(topo.standby_addrs) + 2
    addresses = [addr for role in roles
                 for addr in role_addresses(topo, role)]
    assert len(addresses) == len(set(addresses))
    assert "eris-r1.2" in addresses and "fc" in addresses


def test_role_addresses_rejects_unknown_role():
    from repro.errors import ConfigurationError
    topo = eris_topology(ClusterConfig(system="eris"))
    with pytest.raises(ConfigurationError):
        role_addresses(topo, "switch:0")


# -- WorkerUdpRuntime ------------------------------------------------------

class _Sink:
    def __init__(self, address, runtime):
        self.address = address
        self.runtime = runtime
        self.got = []
        runtime.register(self)

    def deliver(self, packet):
        self.got.append(packet)


def test_worker_runtime_resolves_local_before_remote():
    runtime = WorkerUdpRuntime(rank=1, seed=3)
    try:
        sink = _Sink("a", runtime)
        local_port = runtime._ports["a"]
        runtime.install_port_map("127.0.0.1", {"a": 99999, "b": 4242})
        assert runtime._resolve("a") == ("127.0.0.1", local_port)
        assert runtime._resolve("b") == ("127.0.0.1", 4242)
        assert runtime._resolve("missing") is None
        assert sink.got == []
    finally:
        runtime.stop()


def test_worker_runtime_delivers_over_real_sockets_with_recvmsg():
    """Two worker runtimes in one process, wired only through the port
    map: datagrams cross real sockets and land via the recvmsg_into
    fast path (wakeup/datagram counters move)."""
    a = WorkerUdpRuntime(rank=1, seed=3)
    b = WorkerUdpRuntime(rank=2, seed=4)
    try:
        _Sink("alpha", a)
        sink_b = _Sink("beta", b)
        port_map = dict(a._ports) | dict(b._ports)
        a.install_port_map("127.0.0.1", port_map)
        b.install_port_map("127.0.0.1", port_map)
        a.start()
        from repro.net.message import Packet
        a.send(Packet(src="alpha", dst="beta", payload=("hi", 1)))
        # b's sockets are bound but its readers run on its own loop;
        # pump it until the datagram lands.
        b.start()
        b.run_until(lambda: sink_b.got, timeout=5.0)
        assert len(sink_b.got) == 1
        assert sink_b.got[0].src == "alpha"
        assert b.recv_wakeups >= 1
        assert b.recv_datagrams >= 1
        assert b.recv_wakeups <= b.recv_datagrams
    finally:
        a.stop()
        b.stop()


def test_route_install_broadcasts_to_peer_controls():
    """install_sequencer_route must reach every peer process's runtime
    control endpoint as a RouteInstall packet on the wire."""
    runtime = WorkerUdpRuntime(rank=0, seed=3)
    peer = socket.socket(socket.AF_INET, socket.SOCK_DGRAM)
    peer.bind(("127.0.0.1", 0))
    peer.settimeout(5.0)
    try:
        runtime.install_port_map(
            "127.0.0.1",
            {control_address(1): peer.getsockname()[1]})
        assert runtime._peer_controls == [control_address(1)]
        runtime.start()
        runtime.install_sequencer_route("seq0")
        assert runtime.sequencer_address == "seq0"
        data, _ = peer.recvfrom(65536)
        packets = decode_datagram(data)
        assert len(packets) == 1
        packet = packets[0]
        assert packet.dst == control_address(1)
        assert isinstance(packet.payload, RouteInstall)
        assert packet.payload.address == "seq0"
    finally:
        peer.close()
        runtime.stop()


def test_route_install_receive_path_installs_locally():
    runtime = WorkerUdpRuntime(rank=2, seed=3)
    try:
        assert runtime.sequencer_address is None
        from repro.net.message import Packet
        runtime._control.deliver(Packet(
            src=control_address(0), dst=control_address(2),
            payload=RouteInstall("seq1")))
        assert runtime.sequencer_address == "seq1"
        assert runtime.route_installs == 1
    finally:
        runtime.stop()


def test_timer_slack_quantizes_but_never_fires_early():
    runtime = WorkerUdpRuntime(rank=1, seed=3, timer_slack=0.05)
    try:
        runtime.start()
        fired = []
        t0 = runtime.now
        runtime.call_later(0.01, lambda: fired.append(runtime.now))
        runtime.run_until(lambda: fired, timeout=5.0)
        # Quantized up onto the 50ms grid: never before the requested
        # delay, at most one slack window after it.
        assert fired[0] - t0 >= 0.01
        assert fired[0] - t0 <= 0.01 + 0.05 + 0.05
    finally:
        runtime.stop()


def test_worker_runtime_rejects_bad_knobs():
    from repro.errors import NetworkError
    with pytest.raises(NetworkError):
        WorkerUdpRuntime(rank=-1)
    with pytest.raises(NetworkError):
        WorkerUdpRuntime(rank=0, timer_slack=-1.0)


# -- snapshots + distributed checkers --------------------------------------

def _run_small_sim_cluster():
    from repro.harness import ExperimentConfig, run_experiment
    from repro.sim.randomness import SplitRandom
    from repro.workloads import YCSBConfig, YCSBWorkload

    cluster = make_ycsb_cluster(n_keys=300)
    workload = YCSBWorkload(
        YCSBConfig(workload="mrmw", n_keys=300,
                   distributed_fraction=0.5),
        cluster.partitioner, SplitRandom(5))
    run_experiment(cluster, workload,
                   ExperimentConfig(n_clients=8, warmup=2e-3,
                                    duration=8e-3, drain=5e-3))
    return cluster


def test_snapshot_cluster_round_trips_through_codec_and_passes_checks():
    """Snapshots survive the wire codec and the unmodified checkers
    accept the rehydrated cluster."""
    cluster = _run_small_sim_cluster()
    snapshots = []
    for replicas in cluster.replicas.values():
        for replica in replicas:
            snap = snapshot_replica(replica)
            decoded = decode_message(encode_message(snap, "ewc1"))
            assert isinstance(decoded, ReplicaSnapshot)
            assert decoded == snap
            snapshots.append(decoded)
    assert any(snap.entries for snap in snapshots)
    assert all(snap.store for snap in snapshots)
    merged = SnapshotCluster(snapshots)
    assert set(merged.replicas) == set(cluster.replicas)
    run_all_checks(merged)


def test_snapshot_checkers_catch_tampered_state():
    """The distributed checkers keep their teeth: divergence planted in
    one snapshot's store is an InvariantViolation."""
    cluster = _run_small_sim_cluster()
    snapshots = [snapshot_replica(r)
                 for replicas in cluster.replicas.values()
                 for r in replicas]
    victim = next(s for s in snapshots if s.store)
    key, value = victim.store[0]
    tampered = ReplicaSnapshot(
        address=victim.address, shard=victim.shard,
        replica_index=victim.replica_index, view_num=victim.view_num,
        is_dl=victim.is_dl, crashed=victim.crashed, fed=victim.fed,
        entries=victim.entries,
        store=((key, (value or 0) + 12345),) + victim.store[1:])
    snapshots = [tampered if s is victim else s for s in snapshots]
    with pytest.raises(InvariantViolation):
        run_all_checks(SnapshotCluster(snapshots))


def test_snapshot_replica_is_accepted_as_eris_like():
    from repro.harness.checkers import _eris_like
    from repro.harness.snapshot import SnapshotReplica
    snap = ReplicaSnapshot(address="eris-r0.0", shard=0, replica_index=0,
                           view_num=0, is_dl=True, crashed=False, fed=0,
                           entries=(), store=())
    assert _eris_like(SnapshotReplica(snap))


# -- trace shard merging ---------------------------------------------------

def _make_shard(tmp_path, name, cause_base, ts_values):
    tracer = Tracer(clock=lambda: 0.0, cause_base=cause_base)
    for ts in ts_values:
        tracer.clock = lambda t=ts: t
        tracer.record("send", f"node-{name}",
                      cause=next(tracer._causes))
    path = str(tmp_path / f"trace-{name}.jsonl")
    tracer.export(path)
    return path


def test_merge_trace_shards_sorts_by_timestamp(tmp_path):
    a = _make_shard(tmp_path, "a", 0, [0.3, 0.1])
    b = _make_shard(tmp_path, "b", CAUSE_ID_STRIDE, [0.2, 0.4])
    out = str(tmp_path / "merged.jsonl")
    events = merge_trace_shards([a, b], out)
    assert [e["ts"] for e in events] == [0.1, 0.2, 0.3, 0.4]
    assert load_trace(out) == events


def test_merge_trace_shards_rejects_cause_collision(tmp_path):
    """Two shards assigning the same send cause id means two processes
    shared an id space — the merge must refuse to fuse them."""
    a = _make_shard(tmp_path, "a", 0, [0.1])
    b = _make_shard(tmp_path, "b", 0, [0.2])  # same cause_base: collide
    with pytest.raises(ValueError, match="cause"):
        merge_trace_shards([a, b])


def test_cause_base_makes_id_spaces_disjoint():
    low = Tracer(clock=lambda: 0.0, cause_base=0)
    high = Tracer(clock=lambda: 0.0, cause_base=3 * CAUSE_ID_STRIDE)
    low_ids = {next(low._causes) for _ in range(100)}
    high_ids = {next(high._causes) for _ in range(100)}
    assert not low_ids & high_ids
    assert min(high_ids) > max(low_ids)


def test_trace_merge_cli(tmp_path, capsys):
    from repro.harness.cli import main
    a = _make_shard(tmp_path, "a", 0, [0.2])
    b = _make_shard(tmp_path, "b", CAUSE_ID_STRIDE, [0.1])
    out = str(tmp_path / "merged.jsonl")
    assert main(["trace", "merge", a, b, "-o", out]) == 0
    assert "2 events" in capsys.readouterr().out
    assert [e["ts"] for e in load_trace(out)] == [0.1, 0.2]


# -- control-plane framing -------------------------------------------------

def test_launcher_messages_round_trip_through_codec():
    from repro.runtime.launcher import (
        ClusterStart,
        StateReply,
        WorkerHello,
    )
    hello = WorkerHello(role="replica:0:1", rank=3, pid=123,
                        ports=(("eris-r0.1", 40001), ("_rt.3", 40002)))
    assert decode_message(encode_message(hello, "ewc1")) == hello
    start = ClusterStart(host="127.0.0.1",
                         port_map=(("a", 1), ("b", 2)))
    assert decode_message(encode_message(start, "ewc1")) == start
    snap = ReplicaSnapshot(address="eris-r0.0", shard=0, replica_index=0,
                           view_num=1, is_dl=True, crashed=False, fed=4,
                           entries=(), store=((5, 7),))
    reply = StateReply(rank=1, role="replica:0:0", snapshots=(snap,),
                       counters=(("packets_sent", 10),))
    assert decode_message(encode_message(reply, "ewc1")) == reply


# -- end-to-end multi-process runs -----------------------------------------

def test_mp_smoke_end_to_end(tmp_path):
    """The full stack across real OS processes: ≥8 processes, the
    merged-state §6.7 checkers, and collision-free merged tracing."""
    from repro.harness.mp_smoke import run_udp_smoke_mp

    result = run_udp_smoke_mp(min_commits=15, n_clients=3, n_keys=120,
                              timeout=60.0, trace=True,
                              run_dir=str(tmp_path / "run"))
    assert result.processes >= 8
    assert result.committed >= 15
    assert result.checks_passed
    assert result.trace_events > 0
    events = load_trace(result.trace_path)
    # Events from the driver shard and at least one worker shard made
    # it into the merge (cause ids above the stride ⇒ worker-assigned).
    causes = [e.get("cause") for e in events if e.get("cause")]
    assert any(c >= CAUSE_ID_STRIDE for c in causes)
    assert any(0 < c < CAUSE_ID_STRIDE for c in causes)


def test_mp_launcher_detects_killed_worker(tmp_path):
    """Supervision: a worker dying mid-run tears the cluster down and
    raises an error naming the dead worker's log (and its recorder
    dump, which the SIGTERM handler writes on the way out)."""
    from repro.harness.mp_smoke import run_udp_smoke_mp

    seen = {}

    def kill_one(launcher):
        worker = launcher.workers[1]
        seen["log"] = worker.log_path
        worker.proc.send_signal(signal.SIGTERM)
        seen["launcher"] = launcher

    with pytest.raises(ExperimentError) as err:
        run_udp_smoke_mp(min_commits=100000, n_clients=3, n_keys=120,
                         timeout=60.0, run_dir=str(tmp_path / "run"),
                         _mid_run=kill_one)
    message = str(err.value)
    assert "exited with code" in message
    assert seen["log"] in message
    # Teardown is complete: no worker process left running.
    for worker in seen["launcher"].workers.values():
        assert worker.proc.poll() is not None


def test_udp_smoke_sigint_drains_and_exports(tmp_path):
    """A SIGINT mid-run ends the single-process smoke gracefully: no
    exception, the interruption is noted, and the metrics series is
    still exported."""
    from repro.harness.udp_smoke import run_udp_smoke

    timer = threading.Timer(0.8, os.kill, (os.getpid(), signal.SIGINT))
    timer.start()
    try:
        metrics_path = str(tmp_path / "metrics.jsonl")
        result = run_udp_smoke(min_commits=10 ** 9, timeout=30.0,
                               n_clients=2, n_keys=120,
                               metrics_path=metrics_path,
                               recorder_path=str(tmp_path / "rec.jsonl"))
    finally:
        timer.cancel()
    assert any("interrupted by SIGINT" in note for note in result.notes)
    assert not result.checks_passed
    assert result.metrics_samples > 0
    assert os.path.exists(metrics_path)
