"""Integration tests: sequencer failover and epoch change (§6.5)."""

from repro.baselines.common import WorkloadOp
from repro.harness.checkers import run_all_checks
from repro.harness.faults import FaultPlan
from repro.net.controller import ControllerConfig

from conftest import drive, make_ycsb_cluster, submit_and_wait


def rmw_op(keys, partitioner):
    return WorkloadOp(proc="ycsb_rmw", args={"keys": tuple(keys)},
                      participants=partitioner.participants_for(keys),
                      read_keys=frozenset(keys), write_keys=frozenset(keys))


def fast_controller():
    return ControllerConfig(ping_interval=3e-3, failure_threshold=2,
                            reroute_delay=10e-3)


def test_epoch_change_completes_after_sequencer_failure():
    cluster = make_ycsb_cluster(n_shards=2, controller=fast_controller())
    client = cluster.make_client()
    for i in range(5):
        submit_and_wait(cluster, client, rmw_op([i], cluster.partitioner))
    cluster.crash_active_sequencer()
    drive(cluster, 0.3)
    assert cluster.controller.failovers == 1
    # Epoch change is triggered lazily, by the first packet stamped
    # with the new epoch: send one transaction through the replacement.
    submit_and_wait(cluster, client, rmw_op([0], cluster.partitioner),
                    timeout=1.0)
    drive(cluster, 0.1)
    assert cluster.fc.epoch_changes_completed >= 1
    for replicas in cluster.replicas.values():
        for replica in replicas:
            assert replica.epoch_num == 2
            assert replica.status == "normal"


def test_committed_txns_survive_epoch_change():
    cluster = make_ycsb_cluster(n_shards=2, controller=fast_controller())
    client = cluster.make_client()
    for _ in range(6):
        submit_and_wait(cluster, client, rmw_op([0], cluster.partitioner))
    cluster.crash_active_sequencer()
    drive(cluster, 0.3)
    assert cluster.authoritative_store(0).get(0) == 6
    run_all_checks(cluster)


def test_processing_resumes_in_new_epoch():
    cluster = make_ycsb_cluster(n_shards=2, controller=fast_controller())
    client = cluster.make_client()
    submit_and_wait(cluster, client, rmw_op([0], cluster.partitioner))
    cluster.crash_active_sequencer()
    drive(cluster, 0.3)
    result = submit_and_wait(cluster, client,
                             rmw_op([0, 1], cluster.partitioner),
                             timeout=1.0)
    assert result.committed
    assert cluster.authoritative_store(0).get(0) == 2
    # New-epoch entries carry epoch 2 slots.
    dl = next(r for r in cluster.replicas[0] if r.is_dl and not r.crashed)
    assert any(e.slot.epoch == 2 for e in dl.log)
    run_all_checks(cluster)


def test_inflight_txns_retried_across_epoch_boundary():
    cluster = make_ycsb_cluster(n_shards=2, controller=fast_controller())
    clients = [cluster.make_client() for _ in range(6)]
    done = []
    # Continuous submission while the sequencer dies mid-stream.
    def pump(client, count):
        if count == 0:
            return
        client.submit(
            rmw_op([count % 6, 6 + count % 3], cluster.partitioner),
            lambda r: (done.append(r), pump(client, count - 1)))
    for c in clients:
        pump(c, 30)
    FaultPlan(cluster).kill_sequencer_at(cluster.loop.now + 3e-3)
    drive(cluster, 1.0)
    committed = [r for r in done if r.committed]
    # Everything eventually commits (clients retry across the change).
    assert len(committed) >= 6 * 30 - 6
    run_all_checks(cluster)


def test_second_failover_uses_third_sequencer():
    cluster = make_ycsb_cluster(n_shards=1, controller=fast_controller(),
                                n_sequencers=3)
    client = cluster.make_client()
    submit_and_wait(cluster, client, rmw_op([0], cluster.partitioner))
    cluster.crash_active_sequencer()
    drive(cluster, 0.3)
    submit_and_wait(cluster, client, rmw_op([0], cluster.partitioner),
                    timeout=1.0)
    cluster.crash_active_sequencer()
    drive(cluster, 0.3)
    result = submit_and_wait(cluster, client,
                             rmw_op([0], cluster.partitioner), timeout=1.0)
    assert result.committed
    assert cluster.controller.failovers == 2
    assert cluster.authoritative_store(0).get(0) == 3
    dl = next(r for r in cluster.replicas[0] if r.is_dl and not r.crashed)
    assert dl.epoch_num == 3
