"""Integration tests: sequencer failover and epoch change (§6.5)."""

from repro.baselines.common import WorkloadOp
from repro.harness.checkers import run_all_checks
from repro.harness.faults import FaultPlan
from repro.net.controller import ControllerConfig

from conftest import drive, make_ycsb_cluster, submit_and_wait


def rmw_op(keys, partitioner):
    return WorkloadOp(proc="ycsb_rmw", args={"keys": tuple(keys)},
                      participants=partitioner.participants_for(keys),
                      read_keys=frozenset(keys), write_keys=frozenset(keys))


def fast_controller():
    return ControllerConfig(ping_interval=3e-3, failure_threshold=2,
                            reroute_delay=10e-3)


def test_epoch_change_completes_after_sequencer_failure():
    cluster = make_ycsb_cluster(n_shards=2, controller=fast_controller())
    client = cluster.make_client()
    for i in range(5):
        submit_and_wait(cluster, client, rmw_op([i], cluster.partitioner))
    cluster.crash_active_sequencer()
    drive(cluster, 0.3)
    assert cluster.controller.failovers == 1
    # Epoch change is triggered lazily, by the first packet stamped
    # with the new epoch: send one transaction through the replacement.
    submit_and_wait(cluster, client, rmw_op([0], cluster.partitioner),
                    timeout=1.0)
    drive(cluster, 0.1)
    assert cluster.fc.epoch_changes_completed >= 1
    for replicas in cluster.replicas.values():
        for replica in replicas:
            assert replica.epoch_num == 2
            assert replica.status == "normal"


def test_committed_txns_survive_epoch_change():
    cluster = make_ycsb_cluster(n_shards=2, controller=fast_controller())
    client = cluster.make_client()
    for _ in range(6):
        submit_and_wait(cluster, client, rmw_op([0], cluster.partitioner))
    cluster.crash_active_sequencer()
    drive(cluster, 0.3)
    assert cluster.authoritative_store(0).get(0) == 6
    run_all_checks(cluster)


def test_processing_resumes_in_new_epoch():
    cluster = make_ycsb_cluster(n_shards=2, controller=fast_controller())
    client = cluster.make_client()
    submit_and_wait(cluster, client, rmw_op([0], cluster.partitioner))
    cluster.crash_active_sequencer()
    drive(cluster, 0.3)
    result = submit_and_wait(cluster, client,
                             rmw_op([0, 1], cluster.partitioner),
                             timeout=1.0)
    assert result.committed
    assert cluster.authoritative_store(0).get(0) == 2
    # New-epoch entries carry epoch 2 slots.
    dl = next(r for r in cluster.replicas[0] if r.is_dl and not r.crashed)
    assert any(e.slot.epoch == 2 for e in dl.log)
    run_all_checks(cluster)


def test_inflight_txns_retried_across_epoch_boundary():
    cluster = make_ycsb_cluster(n_shards=2, controller=fast_controller())
    clients = [cluster.make_client() for _ in range(6)]
    done = []
    # Continuous submission while the sequencer dies mid-stream.
    def pump(client, count):
        if count == 0:
            return
        client.submit(
            rmw_op([count % 6, 6 + count % 3], cluster.partitioner),
            lambda r: (done.append(r), pump(client, count - 1)))
    for c in clients:
        pump(c, 30)
    FaultPlan(cluster).kill_sequencer_at(cluster.loop.now + 3e-3)
    drive(cluster, 1.0)
    committed = [r for r in done if r.committed]
    # Everything eventually commits (clients retry across the change).
    assert len(committed) >= 6 * 30 - 6
    run_all_checks(cluster)


def test_second_failover_uses_third_sequencer():
    cluster = make_ycsb_cluster(n_shards=1, controller=fast_controller(),
                                n_sequencers=3)
    client = cluster.make_client()
    submit_and_wait(cluster, client, rmw_op([0], cluster.partitioner))
    cluster.crash_active_sequencer()
    drive(cluster, 0.3)
    submit_and_wait(cluster, client, rmw_op([0], cluster.partitioner),
                    timeout=1.0)
    cluster.crash_active_sequencer()
    drive(cluster, 0.3)
    result = submit_and_wait(cluster, client,
                             rmw_op([0], cluster.partitioner), timeout=1.0)
    assert result.committed
    assert cluster.controller.failovers == 2
    assert cluster.authoritative_store(0).get(0) == 3
    dl = next(r for r in cluster.replicas[0] if r.is_dl and not r.crashed)
    assert dl.epoch_num == 3


# -- fault matrix: loss / reordering during the epoch change itself --------

import pytest


@pytest.mark.parametrize("drop_rate", [0.05, 0.2])
def test_epoch_change_completes_under_packet_loss(drop_rate):
    """Packet loss while the epoch change runs: EPOCH-CHANGE-REQ /
    EPOCH-CHANGE-STATE / START-EPOCH themselves get dropped; the FC's
    retry timers must push the change through anyway."""
    cluster = make_ycsb_cluster(n_shards=2, controller=fast_controller(),
                                tracing=True)
    client = cluster.make_client()
    for i in range(4):
        submit_and_wait(cluster, client, rmw_op([i], cluster.partitioner))
    now = cluster.loop.now
    plan = FaultPlan(cluster)
    plan.kill_sequencer_at(now + 1e-3)
    plan.set_drop_rate_at(now + 1e-3, drop_rate)
    plan.set_drop_rate_at(now + 0.25, 0.0)
    drive(cluster, 0.6)
    # Trigger the lazy epoch change with new-epoch traffic, retried by
    # the client through any residual instability.
    result = submit_and_wait(cluster, client,
                             rmw_op([0, 1], cluster.partitioner),
                             timeout=2.0)
    assert result.committed
    drive(cluster, 0.3)
    tracer = cluster.tracer
    assert tracer.count("epoch_change_start") >= 1
    assert tracer.count("epoch_change_complete") >= cluster.config.n_shards
    assert tracer.count("drop") > 0
    # Heavy loss can drop health-check pings too, triggering extra
    # (legitimate) failovers — converge on the controller's final epoch.
    final_epoch = cluster.controller.current_epoch
    assert final_epoch >= 2
    for replicas in cluster.replicas.values():
        for replica in replicas:
            if not replica.crashed:
                assert replica.epoch_num == final_epoch
                assert replica.status == "normal"
    run_all_checks(cluster)


def test_epoch_change_with_reordered_links():
    cluster = make_ycsb_cluster(n_shards=2, controller=fast_controller(),
                                tracing=True)
    cluster.network.config.fifo_links = False
    cluster.network.config.jitter = 30e-6    # >> back-to-back send gaps
    clients = [cluster.make_client() for _ in range(5)]
    done = []
    # Batched submission: several packets in flight on the SAME link at
    # once, which is what lets jitter invert their arrival order.
    for c in clients:
        for i in range(8):
            c.submit(rmw_op([i % 4, 4 + i % 3], cluster.partitioner),
                     done.append)
    FaultPlan(cluster).kill_sequencer_at(cluster.loop.now + 2e-3)
    drive(cluster, 1.0)
    committed = [r for r in done if r.committed]
    assert len(committed) >= 5 * 8 - 5       # clients retry through it
    # The epoch change is triggered lazily by new-epoch traffic.
    result = submit_and_wait(cluster, clients[0],
                             rmw_op([0, 1], cluster.partitioner),
                             timeout=1.0)
    assert result.committed
    drive(cluster, 0.2)
    tracer = cluster.tracer
    assert tracer.count("reorder") > 0
    assert tracer.count("epoch_change_complete") >= cluster.config.n_shards
    run_all_checks(cluster)


def test_epoch_change_trace_records_fc_collection():
    """The FC's side of the §6.5 protocol shows up in the trace: one
    collection start, then a per-shard epoch start."""
    cluster = make_ycsb_cluster(n_shards=2, controller=fast_controller(),
                                tracing=True)
    client = cluster.make_client()
    submit_and_wait(cluster, client, rmw_op([0], cluster.partitioner))
    cluster.crash_active_sequencer()
    drive(cluster, 0.3)
    submit_and_wait(cluster, client, rmw_op([0], cluster.partitioner),
                    timeout=1.0)
    drive(cluster, 0.1)
    tracer = cluster.tracer
    collects = tracer.select("fc_epoch_collect")
    starts = tracer.select("fc_epoch_start")
    assert len(collects) >= 1 and collects[0].data["epoch"] == 2
    assert {e.data["shard"] for e in starts} == {0, 1}
    assert tracer.count("epoch_change_complete") >= 2
    run_all_checks(cluster)
