"""Unit tests for the observability subsystem (repro.obs)."""

import json
import math

import pytest

from repro.net.message import GroupcastHeader, MultiStamp, Packet
from repro.obs import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    Tracer,
    load_trace,
    nearest_rank_index,
    summarize_trace,
)


def _packet(src="a", dst="b", payload="hello", **kwargs) -> Packet:
    return Packet(src=src, dst=dst, payload=payload, **kwargs)


# -- Tracer ----------------------------------------------------------------

def test_tracer_assigns_causal_ids_at_send():
    tracer = Tracer()
    p1, p2 = _packet(), _packet()
    tracer.packet_send(p1)
    tracer.packet_send(p2)
    assert p1.trace_id == 1
    assert p2.trace_id == 2
    assert [e.cause for e in tracer.select("send")] == [1, 2]


def test_tracer_causal_id_survives_fanout():
    tracer = Tracer()
    packet = _packet(dst=None,
                     groupcast=GroupcastHeader(groups=(0, 1)),
                     sequenced=True)
    tracer.packet_send(packet)
    copy = packet.copy_to("r0")
    assert copy.trace_id == packet.trace_id
    tracer.packet_tx(copy)
    tracer.packet_deliver(copy)
    (deliver,) = tracer.select("deliver")
    assert deliver.cause == packet.trace_id
    (send,) = tracer.select("send")
    assert send.data["groups"] == [0, 1]
    assert send.data["sequenced"] is True


def test_tracer_clock_and_reserved_keys():
    now = [0.0]
    tracer = Tracer(clock=lambda: now[0])
    tracer.record("sync", "n0", shard=0)
    now[0] = 2.5
    event = tracer.record("sync", "n1", shard=1)
    assert event.ts == 2.5
    assert tracer.events[0].ts == 0.0
    with pytest.raises(ValueError):
        tracer.record("bad", "n0", ts=1.0)  # reserved schema field


def test_tracer_detects_reorder():
    tracer = Tracer()
    first, second = _packet(), _packet()
    tracer.packet_send(first)
    tracer.packet_send(second)
    tracer.packet_tx(first)
    tracer.packet_tx(second)
    # Second transmitted packet overtakes the first in flight.
    tracer.packet_deliver(second)
    tracer.packet_deliver(first)
    (reorder,) = tracer.select("reorder")
    assert reorder.cause == first.trace_id
    assert reorder.data["overtaken_by"] == 1
    assert tracer.count("deliver") == 2


def test_tracer_no_reorder_on_in_order_links():
    tracer = Tracer()
    packets = [_packet() for _ in range(5)]
    for p in packets:
        tracer.packet_send(p)
        tracer.packet_tx(p)
    for p in packets:
        tracer.packet_deliver(p)
    assert tracer.count("reorder") == 0


def test_tracer_drop_and_stamp_events():
    tracer = Tracer()
    packet = _packet(dst=None,
                     groupcast=GroupcastHeader(groups=(0, 2)),
                     sequenced=True)
    tracer.packet_send(packet)
    packet.multistamp = MultiStamp(epoch=3, stamps=((0, 7), (2, 9)))
    tracer.sequencer_stamp("seq0", packet)
    tracer.packet_drop(packet, reason="random-loss")
    (stamp,) = tracer.select("stamp")
    assert stamp.node == "seq0"
    assert stamp.data == {"epoch": 3, "stamps": [[0, 7], [2, 9]]}
    (drop,) = tracer.select("drop")
    assert drop.data["reason"] == "random-loss"
    assert drop.cause == packet.trace_id


def test_sequencer_stamp_records_queue_delay_only_when_given():
    tracer = Tracer()
    packet = _packet(dst=None, groupcast=GroupcastHeader(groups=(0,)),
                     sequenced=True)
    tracer.packet_send(packet)
    packet.multistamp = MultiStamp(epoch=1, stamps=((0, 1),))
    tracer.sequencer_stamp("seq0", packet)                  # legacy call
    tracer.sequencer_stamp("seq0", packet, queue_delay=2e-6)
    plain, delayed = tracer.select("stamp")
    assert "queue_delay" not in plain.data
    assert delayed.data["queue_delay"] == 2e-6


def test_tracer_export_and_load_roundtrip(tmp_path):
    tracer = Tracer(clock=lambda: 1.25)
    packet = _packet()
    tracer.packet_send(packet)
    tracer.record("apply", "r0", shard=0, index=1, entry_kind="txn",
                  txn="3:1")
    path = str(tmp_path / "trace.jsonl")
    assert tracer.export(path) == 2
    events = load_trace(path)
    assert len(events) == 2
    assert events[0]["kind"] == "send"
    assert events[1] == {"ts": 1.25, "kind": "apply", "node": "r0",
                         "cause": -1, "shard": 0, "index": 1,
                         "entry_kind": "txn", "txn": "3:1"}
    with open(path) as handle:       # every line is standalone JSON
        for line in handle:
            json.loads(line)


def test_export_is_atomic_and_leaves_no_temp_file(tmp_path):
    tracer = Tracer()
    tracer.packet_send(_packet())
    path = tmp_path / "trace.jsonl"
    path.write_text("precious previous export\n")
    tracer.export(str(path))
    assert list(tmp_path.iterdir()) == [path]   # temp file renamed away
    assert len(load_trace(str(path))) == 1


def test_export_failure_preserves_existing_file(tmp_path, monkeypatch):
    tracer = Tracer()
    tracer.packet_send(_packet())
    path = tmp_path / "trace.jsonl"
    path.write_text("precious previous export\n")
    monkeypatch.setattr(json, "dumps",
                        lambda *a, **k: (_ for _ in ()).throw(OSError("disk")))
    with pytest.raises(OSError):
        tracer.export(str(path))
    # The crash left neither a truncated export nor a temp file behind.
    assert path.read_text() == "precious previous export\n"
    assert list(tmp_path.iterdir()) == [path]


def test_load_trace_reports_offending_line_number(tmp_path):
    path = tmp_path / "trace.jsonl"
    path.write_text('{"ts": 0.0, "kind": "send", "node": "a", "cause": 1}\n'
                    '{"ts": 0.1, "kind": "deliver", not json\n')
    with pytest.raises(ValueError, match=r"trace\.jsonl:2: malformed"):
        load_trace(str(path))


def test_summarize_trace_counts_and_stamp_gaps():
    tracer = Tracer()
    for seq in (1, 2, 4):            # seq 3 never stamped: one gap
        packet = _packet(dst=None, groupcast=GroupcastHeader(groups=(0,)),
                         sequenced=True)
        tracer.packet_send(packet)
        packet.multistamp = MultiStamp(epoch=1, stamps=((0, seq),))
        tracer.sequencer_stamp("seq0", packet)
    tracer.packet_drop(_packet(), reason="random-loss")
    summary = summarize_trace(tracer.events)
    assert summary["sends"] == 3
    assert summary["drops"] == 1
    assert summary["drop_reasons"] == {"random-loss": 1}
    assert summary["drop_rate"] == pytest.approx(1 / 3)
    assert summary["stamps"]["epoch1/group0"] == {
        "stamped": 3, "max_seq": 4, "gaps": 1}
    assert summary["view_changes"] == 0
    assert summary["epoch_changes"] == 0


def test_summarize_trace_accepts_flat_dicts():
    events = [{"ts": 0.0, "kind": "send", "node": "a", "cause": 1},
              {"ts": 0.1, "kind": "deliver", "node": "b", "cause": 1},
              {"ts": 0.2, "kind": "view_change_complete", "node": "r0",
               "cause": -1}]
    summary = summarize_trace(events)
    assert summary["events"] == 3
    assert summary["delivers"] == 1
    assert summary["view_changes"] == 1


# -- metrics ---------------------------------------------------------------

def test_nearest_rank_semantics():
    # 10 samples: p0 -> rank 1, p50 -> rank 5, p100 -> rank 10.
    assert nearest_rank_index(10, 0) == 0
    assert nearest_rank_index(10, 50) == 4
    assert nearest_rank_index(10, 100) == 9
    assert nearest_rank_index(1, 0) == 0
    assert nearest_rank_index(1, 100) == 0
    with pytest.raises(ValueError):
        nearest_rank_index(10, -1)
    with pytest.raises(ValueError):
        nearest_rank_index(10, 100.5)
    with pytest.raises(ValueError):
        nearest_rank_index(0, 50)


def test_counter_and_gauge():
    counter = Counter()
    counter.inc()
    counter.inc(4)
    assert counter.get() == 5
    gauge = Gauge()
    gauge.set(2.5)
    assert gauge.get() == 2.5
    backing = [7]
    pull = Gauge(fn=lambda: backing[0])
    assert pull.get() == 7
    backing[0] = 9
    assert pull.get() == 9


def test_histogram_percentiles_and_snapshot():
    hist = Histogram(scale=1.0, growth=2.0)
    for value in (0.5, 1.5, 3.0, 100.0):
        hist.record(value)
    assert hist.count == 4
    assert hist.mean() == pytest.approx(26.25)
    assert hist.percentile(0) == 0.5          # exact min
    assert hist.percentile(100) == 100.0      # exact max
    # p50 -> rank 2 -> bucket (1, 2] -> upper bound 2.0
    assert hist.percentile(50) == 2.0
    snap = hist.snapshot()
    assert snap["count"] == 4
    assert snap["min"] == 0.5 and snap["max"] == 100.0
    with pytest.raises(ValueError):
        hist.record(-1.0)


def test_histogram_empty():
    hist = Histogram()
    assert math.isnan(hist.mean())
    assert math.isnan(hist.percentile(50))
    assert math.isnan(hist.snapshot()["p99"])


def test_registry_get_or_create_and_snapshot():
    registry = MetricsRegistry()
    counter = registry.counter("net", "packets_sent")
    assert registry.counter("net", "packets_sent") is counter
    counter.inc(3)
    registry.gauge("sim", "now", fn=lambda: 1.5)
    registry.histogram("net", "latency", scale=1.0).record(2.0)
    snap = registry.snapshot()
    assert snap["net"]["packets_sent"] == 3
    assert snap["sim"]["now"] == 1.5
    assert snap["net"]["latency"]["count"] == 1
    assert registry.components() == ["net", "sim"]


def test_registry_gauge_rewire_and_type_clash():
    registry = MetricsRegistry()
    registry.gauge("sim", "now", fn=lambda: 1.0)
    registry.gauge("sim", "now", fn=lambda: 2.0)   # rebuild re-wires
    assert registry.snapshot()["sim"]["now"] == 2.0
    registry.counter("net", "x")
    with pytest.raises(TypeError):
        registry.gauge("net", "x")


def test_registry_gauge_type_clash_with_fn_raises_typeerror():
    # Regression: the fn assignment used to run before the type check,
    # so a Counter registered under the key surfaced as AttributeError
    # (slots) instead of the intended TypeError.
    registry = MetricsRegistry()
    registry.counter("net", "x")
    with pytest.raises(TypeError, match="already registered as Counter"):
        registry.gauge("net", "x", fn=lambda: 1.0)


def test_histogram_merge_folds_exactly():
    left = Histogram(scale=1.0, growth=2.0)
    right = Histogram(scale=1.0, growth=2.0)
    for value in (0.5, 3.0):
        left.record(value)
    for value in (1.5, 100.0):
        right.record(value)
    combined = Histogram(scale=1.0, growth=2.0)
    for value in (0.5, 3.0, 1.5, 100.0):
        combined.record(value)
    assert left.merge(right) is left            # reduce-chain friendly
    assert left.buckets == combined.buckets
    assert left.count == 4
    assert left.total == pytest.approx(combined.total)
    assert left.min == 0.5 and left.max == 100.0
    assert left.percentile(50) == combined.percentile(50)


def test_histogram_merge_empty_operands():
    hist = Histogram(scale=1.0)
    hist.record(2.0)
    hist.merge(Histogram(scale=1.0))            # empty right: no-op
    assert hist.count == 1 and hist.min == 2.0 and hist.max == 2.0
    empty = Histogram(scale=1.0)
    empty.merge(hist)                           # empty left: becomes hist
    assert empty.count == 1
    assert empty.min == 2.0 and empty.max == 2.0


def test_histogram_merge_rejects_incompatible_geometry():
    base = Histogram(scale=1.0, growth=2.0)
    with pytest.raises(ValueError, match="geometry"):
        base.merge(Histogram(scale=2.0, growth=2.0))
    with pytest.raises(ValueError, match="geometry"):
        base.merge(Histogram(scale=1.0, growth=4.0))
    with pytest.raises(TypeError):
        base.merge([1.0, 2.0])
