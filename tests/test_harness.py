"""Tests for the harness: cluster building, experiments, checkers,
faults, results — plus TPC-C end-to-end on Eris and a baseline."""

import pytest

from repro.errors import ConfigurationError, InvariantViolation
from repro.harness import (
    ClusterConfig,
    ExperimentConfig,
    build_cluster,
    format_table,
    run_experiment,
)
from repro.harness.checkers import run_all_checks
from repro.harness.faults import FaultPlan
from repro.harness.results import speedup
from repro.sim.randomness import SplitRandom
from repro.store import ProcedureRegistry
from repro.workloads import (
    Partitioner,
    YCSBConfig,
    YCSBWorkload,
    register_ycsb_procedures,
)
from repro.workloads.tpcc import (
    TPCCConfig,
    TPCCWorkload,
    load_tpcc,
    register_tpcc_procedures,
    tpcc_partitioner,
)
from repro.workloads.tpcc.schema import TPCCScale
from repro.workloads.ycsb import load_ycsb

from conftest import make_ycsb_cluster


def test_unknown_system_rejected():
    with pytest.raises(ConfigurationError):
        ClusterConfig(system="mystery").validate()


def test_cluster_builds_all_systems():
    for system in ("eris", "eris-oum", "granola", "tapir", "lockstore",
                   "ntur"):
        cluster = make_ycsb_cluster(system=system)
        expected = 1 if system == "ntur" else 3
        assert all(len(reps) == expected
                   for reps in cluster.replicas.values())


def test_run_experiment_produces_sane_result():
    cluster = make_ycsb_cluster(n_keys=500)
    workload = YCSBWorkload(YCSBConfig(workload="srw", n_keys=500),
                            cluster.partitioner, SplitRandom(3))
    result = run_experiment(cluster, workload,
                            ExperimentConfig(n_clients=10, warmup=2e-3,
                                             duration=10e-3, drain=5e-3))
    assert result.throughput > 0
    assert result.committed > 50
    assert 0 < result.mean_latency < result.p99_latency
    assert result.aborted == 0
    run_all_checks(cluster)


def test_count_filter_restricts_throughput():
    cluster = make_ycsb_cluster(n_keys=500)
    workload = YCSBWorkload(YCSBConfig(workload="srw", n_keys=500),
                            cluster.partitioner, SplitRandom(3))
    result = run_experiment(
        cluster, workload,
        ExperimentConfig(n_clients=10, warmup=2e-3, duration=10e-3,
                         drain=5e-3,
                         count_filter=lambda op: op.proc == "ycsb_read"))
    assert 0 < result.committed


def test_experiment_timeseries():
    cluster = make_ycsb_cluster(n_keys=200)
    workload = YCSBWorkload(YCSBConfig(workload="srw", n_keys=200),
                            cluster.partitioner, SplitRandom(3))
    result = run_experiment(cluster, workload,
                            ExperimentConfig(n_clients=5, warmup=2e-3,
                                             duration=10e-3, drain=2e-3,
                                             timeseries_bucket=2e-3))
    assert len(result.timeseries) >= 4
    assert any(rate > 0 for _, rate in result.timeseries)


def test_fault_plan_logs_actions():
    cluster = make_ycsb_cluster()
    plan = FaultPlan(cluster)
    plan.set_drop_rate_at(1e-3, 0.5).kill_replica_at(2e-3, 0, 2)
    cluster.loop.run(until=5e-3)
    labels = [label for _, label in plan.injected]
    assert labels == ["drop_rate=0.5", "replica-killed shard=0 index=2"]
    assert cluster.network.config.drop_rate == 0.5
    assert cluster.replicas[0][2].crashed


def test_checker_detects_injected_divergence():
    cluster = make_ycsb_cluster()
    client = cluster.make_client()
    from repro.baselines.common import WorkloadOp
    done = []
    client.submit(WorkloadOp(proc="ycsb_rmw", args={"keys": (0,)},
                             participants=(0,),
                             read_keys=frozenset([0]),
                             write_keys=frozenset([0])), done.append)
    cluster.loop.run(until=0.05)
    assert done and done[0].committed
    # Tamper with one replica's log: checker must notice.
    from repro.core.transaction import SlotId
    replica = cluster.replicas[0][1]
    replica.log.overwrite_noop(1)
    with pytest.raises(InvariantViolation):
        run_all_checks(cluster)


def test_format_table_and_speedup():
    table = format_table(["system", "tput"],
                         [["eris", 1_260_000.0], ["lockstore", 280_000.0]],
                         title="Fig 6")
    assert "Fig 6" in table
    assert "1,260,000" in table
    assert speedup(4.5, 1.0) == "4.50x"
    assert speedup(1.0, 0.0) == "inf"


SMALL_TPCC = TPCCScale(n_warehouses=4, districts_per_warehouse=2,
                       customers_per_district=5, n_items=30)


def tpcc_cluster(system, n_shards=2):
    registry = ProcedureRegistry()
    register_tpcc_procedures(registry)
    partitioner = tpcc_partitioner(n_shards)
    config = ClusterConfig(system=system, n_shards=n_shards, seed=11)
    return build_cluster(
        config, registry, partitioner,
        loader=lambda stores, p: load_tpcc(stores, p, SMALL_TPCC))


@pytest.mark.parametrize("system", ["eris", "ntur", "lockstore",
                                    "granola", "tapir"])
def test_tpcc_runs_end_to_end(system):
    cluster = tpcc_cluster(system)
    workload = TPCCWorkload(TPCCConfig(scale=SMALL_TPCC),
                            cluster.partitioner, SplitRandom(4))
    result = run_experiment(
        cluster, workload,
        ExperimentConfig(n_clients=8, warmup=3e-3, duration=15e-3,
                         drain=10e-3,
                         count_filter=lambda op:
                         op.proc == "tpcc_new_order"))
    assert result.committed > 10      # new-order commits measured
    # 1% invalid-item aborts are expected; anything more means breakage.
    assert result.aborted < result.committed


def test_tpcc_eris_preserves_invariants():
    cluster = tpcc_cluster("eris")
    workload = TPCCWorkload(TPCCConfig(scale=SMALL_TPCC),
                            cluster.partitioner, SplitRandom(4))
    run_experiment(cluster, workload,
                   ExperimentConfig(n_clients=6, warmup=3e-3,
                                    duration=15e-3, drain=20e-3))
    run_all_checks(cluster)
    # Money conservation: every payment debits a customer and credits
    # warehouse+district YTD by the same amount.
    total_wh_ytd = sum(
        cluster.authoritative_store(s).get(("warehouse", w))["ytd"]
        for w in range(SMALL_TPCC.n_warehouses)
        for s in [cluster.partitioner.shard_of(("warehouse", w))])
    assert total_wh_ytd >= SMALL_TPCC.n_warehouses * 300_000.0
