"""Unit tests for the KV store, undo log, and procedure contexts."""

import pytest

from repro.errors import TransactionAborted, UnknownProcedureError
from repro.store.kv import KVStore, MISSING
from repro.store.procedures import ProcedureRegistry, TxnContext
from repro.store.undo import UndoLog


def test_get_missing_returns_sentinel():
    store = KVStore()
    assert store.get("nope") is MISSING
    assert not MISSING  # falsy but distinct from None
    store.put("k", None)
    assert store.get("k") is None


def test_put_get_delete_roundtrip():
    store = KVStore()
    store.put("k", 42)
    assert store.get("k") == 42
    assert "k" in store
    store.delete("k")
    assert store.get("k") is MISSING
    assert len(store) == 0


def test_restore_reinstates_or_removes():
    store = KVStore()
    store.put("k", 1)
    store.restore("k", MISSING)
    assert "k" not in store
    store.restore("k", 7)
    assert store.get("k") == 7


def test_scan_prefix_matches_tuple_keys():
    store = KVStore()
    store.put(("stock", 1, 10), "a")
    store.put(("stock", 1, 11), "b")
    store.put(("stock", 2, 10), "c")
    store.put("plain", "d")
    found = dict(store.scan_prefix(("stock", 1)))
    assert found == {("stock", 1, 10): "a", ("stock", 1, 11): "b"}


def test_snapshot_and_load():
    store = KVStore()
    store.put("a", 1)
    snap = store.snapshot()
    store.put("a", 2)
    store.load(snap)
    assert store.get("a") == 1


def test_read_write_counters():
    store = KVStore()
    store.put("a", 1)
    store.get("a")
    store.get("b")
    assert store.writes == 1
    assert store.reads == 2


def test_undo_rolls_back_in_reverse():
    store = KVStore()
    store.put("a", 1)
    undo = UndoLog()
    undo.record("a", store.get("a"))
    store.put("a", 2)
    undo.record("b", store.get("b"))   # MISSING pre-image
    store.put("b", 99)
    undo.rollback(store)
    assert store.get("a") == 1
    assert store.get("b") is MISSING
    assert len(undo) == 0


def test_undo_keeps_first_preimage_only():
    store = KVStore()
    store.put("a", 1)
    undo = UndoLog()
    undo.record("a", 1)
    store.put("a", 2)
    undo.record("a", 2)   # ignored: first pre-image wins
    store.put("a", 3)
    undo.rollback(store)
    assert store.get("a") == 1


def test_ctx_tracks_read_write_sets():
    store = KVStore()
    store.put("a", 1)
    ctx = TxnContext(store)
    ctx.get("a")
    ctx.put("b", 2)
    ctx.delete("a")
    assert ctx.read_set == {"a"}
    assert ctx.write_set == {"a", "b"}


def test_ctx_ownership_filter():
    store = KVStore()
    ctx = TxnContext(store, shard=1, owns=lambda k: k.startswith("mine"))
    assert ctx.owns("mine:1")
    assert not ctx.owns("theirs:1")


def test_ctx_records_undo():
    store = KVStore()
    store.put("a", 1)
    undo = UndoLog()
    ctx = TxnContext(store, undo=undo)
    ctx.put("a", 2)
    undo.rollback(store)
    assert store.get("a") == 1


def test_ctx_abort_raises():
    ctx = TxnContext(KVStore())
    with pytest.raises(TransactionAborted) as info:
        ctx.abort("bad input")
    assert info.value.reason == "bad input"


def test_registry_executes_and_lists():
    registry = ProcedureRegistry()
    registry.register("double", lambda ctx, args: args["x"] * 2)
    ctx = TxnContext(KVStore())
    assert registry.execute("double", ctx, {"x": 21}) == 42
    assert "double" in registry
    assert registry.names() == ["double"]


def test_registry_unknown_procedure():
    registry = ProcedureRegistry()
    with pytest.raises(UnknownProcedureError):
        registry.procedure("ghost")
