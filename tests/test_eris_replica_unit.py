"""Unit-level tests for ErisReplica internals: synchronization details,
OUM mode, temp-drop gating, crash behavior."""

import pytest

from repro.baselines.common import WorkloadOp
from repro.core.messages import SyncAck, SyncLog
from repro.core.transaction import SlotId

from conftest import drive, make_ycsb_cluster, submit_and_wait


def rmw_op(keys, partitioner):
    return WorkloadOp(proc="ycsb_rmw", args={"keys": tuple(keys)},
                      participants=partitioner.participants_for(keys),
                      read_keys=frozenset(keys), write_keys=frozenset(keys))


def test_sync_tracks_per_peer_progress():
    cluster = make_ycsb_cluster(n_shards=1)
    client = cluster.make_client()
    for _ in range(5):
        submit_and_wait(cluster, client, rmw_op([0], cluster.partitioner))
    drive(cluster, 0.03)
    dl = next(r for r in cluster.replicas[0] if r.is_dl)
    for peer in dl._peers():
        assert dl._peer_synced[peer] == dl.log.last_index


def test_sync_resends_only_suffix():
    cluster = make_ycsb_cluster(n_shards=1)
    client = cluster.make_client()
    submit_and_wait(cluster, client, rmw_op([0], cluster.partitioner))
    drive(cluster, 0.03)     # peers acked index 1
    dl = next(r for r in cluster.replicas[0] if r.is_dl)
    sent = []
    original_send = dl.send

    def spy(dst, message):
        if isinstance(message, SyncLog):
            sent.append(message)
        original_send(dst, message)

    dl.send = spy
    submit_and_wait(cluster, client, rmw_op([0], cluster.partitioner))
    drive(cluster, 0.01)
    assert sent
    assert all(m.from_index >= 2 for m in sent)   # no re-shipping slot 1


def test_sync_is_dl_heartbeat():
    """Non-DL replicas reset their view-change timer on SyncLog; with a
    healthy DL no view change ever triggers."""
    cluster = make_ycsb_cluster(n_shards=1)
    drive(cluster, 0.2)   # many view_change_timeout periods, no traffic
    for replica in cluster.replicas[0]:
        assert replica.view_num == 0
        assert replica.status == "normal"


def test_stale_sync_from_old_view_ignored():
    cluster = make_ycsb_cluster(n_shards=1)
    client = cluster.make_client()
    submit_and_wait(cluster, client, rmw_op([0], cluster.partitioner))
    replica = cluster.replicas[0][1]
    replica.view_num = 3
    before = replica.log.last_index
    replica.on_SyncLog("ghost", SyncLog(shard=0, view_num=1, epoch_num=1,
                                        from_index=99, entries=(),
                                        commit_upto=99), None)
    assert replica.log.last_index == before


def test_sync_ack_from_old_epoch_ignored():
    cluster = make_ycsb_cluster(n_shards=1)
    dl = next(r for r in cluster.replicas[0] if r.is_dl)
    peer = dl._peers()[0]
    dl.on_SyncAck(peer, SyncAck(shard=0, view_num=0, epoch_num=99,
                                log_len=50, sender=peer), None)
    assert dl._peer_synced[peer] == 0


def test_oum_mode_logs_noops_for_foreign_txns():
    cluster = make_ycsb_cluster(system="eris-oum", n_shards=2)
    client = cluster.make_client()
    # A transaction only for shard 1 still reaches shard 0's replicas.
    result = submit_and_wait(cluster, client,
                             rmw_op([1], cluster.partitioner))
    assert result.committed
    drive(cluster, 0.01)
    shard0_dl = next(r for r in cluster.replicas[0] if r.is_dl)
    assert shard0_dl.log.last_index == 1
    assert shard0_dl.log.get(1).is_noop          # burned a slot + CPU
    shard1_dl = next(r for r in cluster.replicas[1] if r.is_dl)
    assert shard1_dl.log.get(1).kind == "txn"


def test_oum_mode_cross_shard_txn_executes_once_per_shard():
    cluster = make_ycsb_cluster(system="eris-oum", n_shards=2)
    client = cluster.make_client()
    result = submit_and_wait(cluster, client,
                             rmw_op([0, 1], cluster.partitioner))
    assert result.committed
    assert cluster.authoritative_store(0).get(0) == 1
    assert cluster.authoritative_store(1).get(1) == 1


def test_crash_stops_replica_timers():
    cluster = make_ycsb_cluster(n_shards=1)
    replica = cluster.replicas[0][1]
    replica.crash()
    assert not replica._vc_timer.active
    assert not replica._sync_timer.active
    events_before = cluster.loop.events_processed
    drive(cluster, 0.1)
    # A crashed cluster member generates (almost) no events.
    assert cluster.loop.events_processed - events_before < 1500


def test_blocked_delivery_queue_preserves_order():
    """Entries behind a temp-dropped transaction are processed in their
    original sequence order once the FC decides."""
    cluster = make_ycsb_cluster(n_shards=1)
    dl = next(r for r in cluster.replicas[0] if r.is_dl)
    from repro.core.messages import (IndependentTxnRequest, TxnDropped,
                                     TxnRequestMsg)
    from repro.core.transaction import IndependentTransaction, TxnId
    from repro.net.message import MultiStamp, Packet

    slot = SlotId(0, 1, 1)
    dl.on_TxnRequestMsg("fc", TxnRequestMsg(slot=slot), None)

    def packet(seq, key, client, value):
        txn = IndependentTransaction(
            txn_id=TxnId(client, 1), proc="ycsb_write",
            args={"key": key, "value": value}, participants=(0,),
            write_keys=frozenset([key]))
        return Packet(src=client, dst=dl.address,
                      payload=IndependentTxnRequest(txn),
                      multistamp=MultiStamp(1, ((0, seq),)))

    dl._on_sequenced(packet(1, 0, "c1", "first"))   # blocked (temp-drop)
    dl._on_sequenced(packet(2, 1, "c2", "second"))  # queued behind it
    assert len(dl.log) == 0
    dl.on_TxnDropped("fc", TxnDropped(slot=slot), None)
    assert len(dl.log) == 2
    assert dl.log.get(1).is_noop          # perm-dropped slot
    assert dl.log.get(2).record.txn.txn_id.client == "c2"
    assert dl.store.get(1) == "second"
    assert dl.store.get(0) == 0           # dropped txn never executed


def test_txn_found_wins_over_block():
    cluster = make_ycsb_cluster(n_shards=1)
    dl = next(r for r in cluster.replicas[0] if r.is_dl)
    from repro.core.messages import (IndependentTxnRequest, TxnFound,
                                     TxnRecord, TxnRequestMsg)
    from repro.core.transaction import IndependentTransaction, TxnId
    from repro.net.message import MultiStamp, Packet

    slot = SlotId(0, 1, 1)
    dl.on_TxnRequestMsg("fc", TxnRequestMsg(slot=slot), None)
    txn = IndependentTransaction(
        txn_id=TxnId("c1", 1), proc="ycsb_write",
        args={"key": 0, "value": "v"}, participants=(0,),
        write_keys=frozenset([0]))
    stamp = MultiStamp(1, ((0, 1),))
    dl._on_sequenced(Packet(src="c1", dst=dl.address,
                            payload=IndependentTxnRequest(txn),
                            multistamp=stamp))
    assert len(dl.log) == 0
    dl.on_TxnFound("fc", TxnFound(slot=slot,
                                  record=TxnRecord(txn=txn,
                                                   multistamp=stamp)),
                   None)
    assert len(dl.log) == 1
    assert dl.log.get(1).kind == "txn"
    assert dl.store.get(0) == "v"


def test_replica_ignores_foreign_shard_groupcast():
    """A replica only logs transactions whose stamp covers its group."""
    cluster = make_ycsb_cluster(n_shards=2)
    replica = cluster.replicas[0][0]
    from repro.core.messages import IndependentTxnRequest
    from repro.core.transaction import IndependentTransaction, TxnId
    from repro.net.message import MultiStamp, Packet
    txn = IndependentTransaction(txn_id=TxnId("c", 1), proc="ycsb_read",
                                 args={"key": 1}, participants=(1,))
    replica._on_sequenced(Packet(
        src="c", dst=replica.address,
        payload=IndependentTxnRequest(txn),
        multistamp=MultiStamp(1, ((1, 1),))))   # shard 1 only
    assert len(replica.log) == 0
