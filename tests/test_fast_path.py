"""Coordination-free fast paths, end to end and adversarially.

End-to-end: a traced counters run with ``read_fast_path`` +
``commutative_apply`` on really takes both relaxed paths (fast reads
served, out-of-order early applies) and still passes every §6.7
checker — state- and trace-backed — including under packet drops.

Adversarially: forged traces in which a relaxed path was taken when
the protocol forbids it (a read served while a conflicting write was
in flight, a GENERIC transaction applied out of order, a commutative
apply jumping a non-commutative slot) are each caught by the
dedicated trace checkers."""

import pytest

from repro.core.replica import ErisConfig
from repro.errors import ConfigurationError, InvariantViolation
from repro.harness import ClusterConfig, build_cluster
from repro.harness.checkers import (
    check_trace_commutative_applies,
    check_trace_fast_reads,
    run_all_checks,
    run_trace_checks,
)
from repro.net.network import NetConfig
from repro.sim.randomness import SplitRandom
from repro.store import ProcedureRegistry
from repro.workloads import (
    CountersConfig,
    CountersWorkload,
    Partitioner,
    load_counters,
    register_counters_procedures,
)

N_KEYS = 1000


def _run_counters_cluster(fast_path: bool = True, n_ops: int = 400,
                          n_clients: int = 8, drop_rate: float = 0.0,
                          seed: int = 3):
    """A small traced counters run; sync and watermark cadences are
    tightened so non-DL execution watermarks reach the sequencer well
    within the run (fast reads need all-replica coverage)."""
    registry = ProcedureRegistry()
    register_counters_procedures(registry)
    partitioner = Partitioner(2)
    config = ClusterConfig(
        system="eris", n_shards=2, seed=seed, tracing=True,
        read_fast_path=fast_path, commutative_apply=fast_path,
        eris=ErisConfig(sync_interval=0.4e-3,
                        watermark_interval=0.1e-3),
        net=NetConfig(drop_rate=drop_rate))
    cluster = build_cluster(
        config, registry, partitioner,
        loader=lambda stores, p: load_counters(stores, p, N_KEYS))
    workload = CountersWorkload(
        CountersConfig(n_keys=N_KEYS, multi_shard_fraction=0.2),
        partitioner, SplitRandom(seed))
    done = []
    remaining = [n_ops]

    def issue(client):
        def finish(result, c=client):
            done.append(result)
            remaining[0] -= 1
            if remaining[0] > 0:
                issue(c)
        client.submit(workload.next_op(), finish)

    clients = [cluster.make_client() for _ in range(n_clients)]
    for client in clients:
        issue(client)
    cluster.loop.run(until=0.2)
    assert len(done) >= n_ops and all(r.committed for r in done)
    return cluster, clients


def _early_applies(cluster) -> int:
    return sum(replica.early_applies
               for replicas in cluster.replicas.values()
               for replica in replicas)


# -- end to end -------------------------------------------------------------

def test_fast_paths_taken_and_checks_pass(tmp_path):
    cluster, clients = _run_counters_cluster()
    sequencer = cluster.sequencers[0]
    served = sum(replica.fast_reads_served
                 for replicas in cluster.replicas.values()
                 for replica in replicas)
    assert sequencer.fast_reads > 0
    assert served == sequencer.fast_reads
    assert sum(c.node.fast_read_count for c in clients) == sequencer.fast_reads
    assert _early_applies(cluster) > 0
    assert cluster.tracer.count("fast_read") == sequencer.fast_reads
    assert cluster.tracer.count("early_apply") == _early_applies(cluster)
    # Live checkers and the exported-JSONL path both pass.
    run_all_checks(cluster)
    path = str(tmp_path / "trace.jsonl")
    cluster.tracer.export(path)
    run_trace_checks(path)


def test_fast_paths_survive_packet_drops():
    cluster, _ = _run_counters_cluster(drop_rate=0.01)
    assert cluster.sequencers[0].fast_reads > 0
    assert _early_applies(cluster) > 0
    run_all_checks(cluster)


def test_knobs_off_takes_no_relaxed_path():
    cluster, clients = _run_counters_cluster(fast_path=False)
    assert cluster.sequencers[0].fast_reads == 0
    assert cluster.sequencers[0].fast_read_misses == 0
    assert _early_applies(cluster) == 0
    assert sum(c.node.fast_read_count for c in clients) == 0
    assert cluster.tracer.count("fast_read") == 0
    assert cluster.tracer.count("early_apply") == 0
    run_all_checks(cluster)


def test_fast_path_knobs_require_eris():
    for knob in ({"read_fast_path": True}, {"commutative_apply": True}):
        with pytest.raises(ConfigurationError, match="require"):
            ClusterConfig(system="tapir", **knob).validate()
        with pytest.raises(ConfigurationError, match="require"):
            ClusterConfig(system="eris-oum", **knob).validate()


# -- forged traces ----------------------------------------------------------

def _stamp(seq, txn, op_class, write_keys=None, group=0, ts=0.0):
    event = {"ts": ts, "kind": "stamp", "node": "seq", "cause": -1,
             "epoch": 1, "stamps": [[group, seq]], "txn": txn,
             "op_class": op_class}
    if write_keys is not None:
        event["write_keys"] = [repr(k) for k in write_keys]
    return event


def _apply(node, seq, txn, group=0, ts=0.0):
    return {"ts": ts, "kind": "apply", "node": node, "cause": -1,
            "shard": group, "index": seq, "entry_kind": "txn",
            "slot": [group, 1, seq], "txn": txn}


def _fast_read(keys, txn="c:9", group=0, ts=1.0):
    return {"ts": ts, "kind": "fast_read", "node": "seq", "cause": -1,
            "txn": txn, "shard": group, "keys": [repr(k) for k in keys],
            "replica": "r0.0"}


def _early_apply(seq, txn, barrier, next_seq, group=0, ts=1.0):
    return {"ts": ts, "kind": "early_apply", "node": "r0.0", "cause": -1,
            "shard": group, "txn": txn, "slot": [group, 1, seq],
            "barrier": barrier, "next_seq": next_seq}


REPLICAS = ("r0.0", "r0.1", "r0.2")


def test_forged_dirty_fast_read_caught():
    # The write at seq 2 touches key 5 and has been applied by only two
    # of the shard's three replicas when the read on key 5 is served.
    trace = [
        _stamp(2, "c:1", "generic", write_keys=[5]),
        _apply("r0.0", 2, "c:1", ts=0.1),
        _apply("r0.1", 2, "c:1", ts=0.2),
        _apply("r0.2", 1, "c:0", ts=0.3),    # member, but lagging
        _fast_read([5]),
    ]
    with pytest.raises(InvariantViolation, match="dirty fast read"):
        check_trace_fast_reads(trace)
    with pytest.raises(InvariantViolation):
        run_trace_checks(trace)


def test_forged_blind_write_poisons_every_key():
    # An undeclared write set means *any* fast read on the shard is
    # dirty until the write is applied everywhere — even on disjoint
    # keys.
    trace = [
        _stamp(2, "c:1", "generic"),          # no write_keys: blind
        _apply("r0.0", 2, "c:1", ts=0.1),
        _apply("r0.1", 2, "c:1", ts=0.2),
        _apply("r0.2", 1, "c:0", ts=0.3),
        _fast_read([999]),
    ]
    with pytest.raises(InvariantViolation, match="blind"):
        check_trace_fast_reads(trace)


def test_covered_write_allows_fast_read():
    # Same shape, but every replica applied the write first: clean.
    trace = [
        _stamp(2, "c:1", "generic", write_keys=[5]),
        *[_apply(node, 2, "c:1", ts=0.1) for node in REPLICAS],
        _fast_read([5]),
    ]
    check_trace_fast_reads(trace)             # no violation
    run_trace_checks(trace)


def test_crashed_replica_does_not_block_coverage():
    trace = [
        _stamp(2, "c:1", "generic", write_keys=[5]),
        _apply("r0.0", 2, "c:1", ts=0.1),
        _apply("r0.1", 2, "c:1", ts=0.2),
        _apply("r0.2", 1, "c:0", ts=0.3),
        {"ts": 0.4, "kind": "crash", "node": "r0.2", "cause": -1},
        _fast_read([5]),
    ]
    check_trace_fast_reads(trace)             # no violation


def test_forged_generic_early_apply_caught():
    trace = [
        _stamp(3, "c:2", "generic", write_keys=[7]),
        _early_apply(3, "c:2", barrier=1, next_seq=2),
    ]
    with pytest.raises(InvariantViolation, match="non-commutative"):
        check_trace_commutative_applies(trace)
    with pytest.raises(InvariantViolation):
        run_trace_checks(trace)


def test_forged_barrier_earlier_than_stamps_caught():
    # The event's recorded barrier looks fine, but the stamp stream
    # shows a generic transaction at seq 1 that the early apply of
    # seq 3 jumped while the replica's in-order point was still 1.
    trace = [
        _stamp(1, "c:1", "generic", write_keys=[7]),
        _stamp(3, "c:2", "commutative", write_keys=[8], ts=0.1),
        _early_apply(3, "c:2", barrier=0, next_seq=1),
    ]
    with pytest.raises(InvariantViolation, match="jumped"):
        check_trace_commutative_applies(trace)


def test_forged_barrier_at_or_past_in_order_point_caught():
    trace = [
        _stamp(3, "c:2", "commutative", write_keys=[8]),
        _early_apply(3, "c:2", barrier=2, next_seq=2),
    ]
    with pytest.raises(InvariantViolation, match="barrier"):
        check_trace_commutative_applies(trace)


def test_legitimate_early_apply_passes():
    # Every slot below seq 2 is commutative, the barrier is below the
    # in-order point: the §3.2 relaxation's legal case.
    trace = [
        _stamp(1, "c:1", "commutative", write_keys=[6]),
        _stamp(2, "c:2", "commutative", write_keys=[8], ts=0.1),
        _early_apply(2, "c:2", barrier=0, next_seq=1),
    ]
    check_trace_commutative_applies(trace)    # no violation
    run_trace_checks(trace)
