"""Unit tests for the client-side general-transaction manager, plus
the VR retransmission path added for lossy networks."""

import pytest

from repro.baselines.common import WorkloadOp
from repro.core.general import GeneralTransactionManager
from repro.net.network import NetConfig, Network
from repro.replication.vr import VRConfig, VRPrepare, VRReplica
from repro.sim.event_loop import EventLoop

from conftest import drive, make_ycsb_cluster, submit_and_wait


def test_manager_counts_commits_and_aborts():
    cluster = make_ycsb_cluster(n_shards=2)
    client = cluster.make_client()
    manager = GeneralTransactionManager(client.node)
    outcomes = []
    manager.execute(read_keys={0, 1}, write_keys={0, 1},
                    participants=(0, 1),
                    compute=lambda values: {0: 1, 1: 1},
                    callback=outcomes.append)
    manager.execute(read_keys={2, 3}, write_keys={2, 3},
                    participants=(0, 1),
                    compute=lambda values: None,     # application abort
                    callback=outcomes.append)
    drive(cluster, 0.1)
    assert len(outcomes) == 2
    assert manager.committed == 1
    assert manager.aborted == 1
    aborted = next(o for o in outcomes if not o.committed)
    assert aborted.reason == "application abort"


def test_manager_merges_values_across_shards():
    cluster = make_ycsb_cluster(n_shards=2)
    client = cluster.make_client()
    manager = GeneralTransactionManager(client.node)
    seen = {}
    manager.execute(read_keys={0, 1}, write_keys=set(),
                    participants=(0, 1),
                    compute=lambda values: (seen.update(values) or {}),
                    callback=lambda outcome: None)
    drive(cluster, 0.1)
    # Keys 0 and 1 live on different shards; both values were merged.
    assert set(seen) == {0, 1}


def test_manager_gtid_is_prelim_txn_id():
    cluster = make_ycsb_cluster(n_shards=1)
    client = cluster.make_client()
    manager = GeneralTransactionManager(client.node)
    outcomes = []
    gtid = manager.execute(read_keys={0}, write_keys={0},
                           participants=(0,),
                           compute=lambda values: {0: 9},
                           callback=outcomes.append)
    drive(cluster, 0.1)
    assert outcomes[0].gtid == gtid
    assert outcomes[0].committed


def test_reconnaissance_empty_request_completes_immediately():
    cluster = make_ycsb_cluster(n_shards=1)
    client = cluster.make_client()
    manager = GeneralTransactionManager(client.node)
    results = []
    manager.reconnaissance({}, results.append)
    assert results == [{}]


def test_sequential_generals_from_one_client():
    cluster = make_ycsb_cluster(n_shards=2)
    client = cluster.make_client()
    manager = GeneralTransactionManager(client.node)
    outcomes = []

    def second(first_outcome):
        outcomes.append(first_outcome)
        manager.execute(read_keys={0, 1}, write_keys={0, 1},
                        participants=(0, 1),
                        compute=lambda values: {0: values[0] + 1,
                                                1: values[1] + 1},
                        callback=outcomes.append)

    manager.execute(read_keys={0, 1}, write_keys={0, 1},
                    participants=(0, 1),
                    compute=lambda values: {0: 10, 1: 10},
                    callback=second)
    drive(cluster, 0.2)
    assert len(outcomes) == 2
    assert all(o.committed for o in outcomes)
    assert cluster.authoritative_store(0).get(0) == 11
    assert cluster.authoritative_store(1).get(1) == 11


# -- VR retransmission (lost prepares must not wedge the log) -------------

class Applied(VRReplica):
    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self.applied = []

    def execute_op(self, op):
        self.applied.append(op)
        return op


def test_vr_lost_prepare_recovered_by_heartbeat():
    loop = EventLoop()
    net = Network(loop, NetConfig(jitter=0.0))
    group = ["r0", "r1", "r2"]
    config = VRConfig(heartbeat_interval=3e-3, view_change_timeout=60e-3)
    replicas = [Applied(a, net, group, i, config)
                for i, a in enumerate(group)]
    # Drop the FIRST VRPrepare for op 1 to each backup.
    dropped = set()

    def drop_first_prepares(pkt):
        if isinstance(pkt.payload, VRPrepare) and pkt.payload.op_num == 1:
            key = (pkt.dst, pkt.payload.op_num)
            if key not in dropped:
                dropped.add(key)
                return True
        return False

    net.drop_filter = drop_first_prepares
    done = []
    replicas[0].replicate("op-1", done.append)
    loop.run(until=0.05)
    assert done == ["op-1"]              # committed despite the loss
    for replica in replicas:
        assert replica.applied == ["op-1"]


def test_vr_gap_filled_in_order():
    """A backup that missed op N must not ack op N+1 out of order; the
    heartbeat retransmission fills the gap sequentially."""
    loop = EventLoop()
    net = Network(loop, NetConfig(jitter=0.0))
    group = ["r0", "r1", "r2"]
    config = VRConfig(heartbeat_interval=3e-3, view_change_timeout=60e-3)
    replicas = [Applied(a, net, group, i, config)
                for i, a in enumerate(group)]
    window = {"drop": True}
    net.drop_filter = lambda pkt: (window["drop"]
                                   and isinstance(pkt.payload, VRPrepare)
                                   and pkt.dst == "r1")
    done = []
    for i in range(3):
        replicas[0].replicate(f"op-{i}", done.append)
    loop.run(until=2e-3)
    window["drop"] = False
    loop.run(until=0.05)
    assert len(done) == 3
    assert replicas[1].applied == ["op-0", "op-1", "op-2"]
