"""Determinism and boundedness guarantees of the optimized simulator.

The event-loop performance pass (tuple-keyed heap, deferred
``reschedule``, heap compaction, fabric fast paths) must not change
*what* the simulator computes, only how fast: two runs with the same
seed must fire the identical ``(time, seq)`` event stream and reach the
identical protocol outcome — and that stream must be identical to the
pre-optimization implementation's, which is pinned here as a digest
captured from the naive heap (cancel-and-repush timers, Event-object
comparisons) on the exact same configuration.
"""

import hashlib

import pytest

from repro.harness import (
    ClusterConfig,
    ExperimentConfig,
    build_cluster,
    run_experiment,
)
from repro.net.network import NetConfig, Network
from repro.sim.event_loop import EventLoop
from repro.sim.process import Timer
from repro.sim.randomness import SplitRandom
from repro.store import ProcedureRegistry
from repro.workloads import (
    Partitioner,
    YCSBConfig,
    YCSBWorkload,
    register_ycsb_procedures,
)
from repro.workloads.ycsb import load_ycsb

# Pinned from the pre-optimization event loop (naive heap) running this
# exact configuration: sha256 over one "repr(time):seq\n" line per fired
# event. The optimized loop must reproduce it bit-for-bit.
PRE_OPTIMIZATION_DIGEST = \
    "ba16d1cc90106f119f9e8a6661d9c7806df7900f2055bf49b373366de7ada8d2"
PRE_OPTIMIZATION_FIRED = 18524
PRE_OPTIMIZATION_COMMITTED = 1133
PRE_OPTIMIZATION_PACKETS_SENT = 6172
PRE_OPTIMIZATION_THROUGHPUT = 377666.6666666667

# Same configuration fronted by a 3-node chain-replicated sequencer
# (chain forwards + tail release change the event stream, so the chain
# has its own pinned digest). Captured at chain introduction; the chain
# must stay deterministic and codec-clean from here on.
CHAIN_DIGEST = \
    "cd132a76585324f66473d490261cdda84ece58cafb182c666d547ac0c192481f"
CHAIN_FIRED = 14420
CHAIN_COMMITTED = 595
CHAIN_PACKETS_SENT = 4804
CHAIN_THROUGHPUT = 198333.33333333334


def run_small_eris(tracing: bool = False, paranoid_codec: bool = False,
                   sequencer_chain: int = 0, wire: str = "ewc1",
                   instrument: bool = False,
                   sample_series_to: str = ""):
    """One small fig6-style Eris measurement with an event fingerprint.

    ``instrument`` registers every component's pull-gauges (no sampler:
    nothing is scheduled, so the pinned digest must hold);
    ``sample_series_to`` additionally runs the metrics sampler on the
    simulated clock and exports the JSONL series to that path.
    """
    registry = ProcedureRegistry()
    register_ycsb_procedures(registry)
    partitioner = Partitioner(2)
    cluster = build_cluster(
        ClusterConfig(system="eris", n_shards=2, seed=42, tracing=tracing,
                      sequencer_chain=sequencer_chain,
                      net=NetConfig(paranoid_codec=paranoid_codec,
                                    wire=wire)),
        registry, partitioner,
        loader=lambda stores, p: load_ycsb(stores, p, 500))
    digest = hashlib.sha256()
    fired = [0]

    def fingerprint(event):
        digest.update(f"{event.time!r}:{event.seq}\n".encode())
        fired[0] += 1

    cluster.loop.on_event = fingerprint
    sampler = None
    if instrument or sample_series_to:
        cluster.instrument_metrics()
    if sample_series_to:
        from repro.obs import MetricsSampler
        sampler = MetricsSampler(cluster.runtime, cluster.metrics,
                                 interval=1e-3)
        sampler.start()
    workload = YCSBWorkload(YCSBConfig(workload="srw", n_keys=500),
                            partitioner, SplitRandom(43))
    result = run_experiment(cluster, workload, ExperimentConfig(
        n_clients=20, warmup=1e-3, duration=3e-3, drain=1e-3))
    if sampler is not None:
        sampler.stop()
        sampler.export(sample_series_to)
    return {
        "digest": digest.hexdigest(),
        "fired": fired[0],
        "committed": result.committed,
        "throughput": result.throughput,
        "packets_sent": cluster.network.packets_sent,
        "packets_delivered": cluster.network.packets_delivered,
        "seq": cluster.loop._seq,
    }


def test_same_seed_runs_are_bit_identical():
    first = run_small_eris()
    second = run_small_eris()
    assert first == second


def test_optimized_loop_matches_pre_optimization_pinned_sequence():
    """The whole point of the pinned digest: the perf pass changed the
    data structures, not the event order or the protocol outcome."""
    run = run_small_eris()
    assert run["digest"] == PRE_OPTIMIZATION_DIGEST
    assert run["fired"] == PRE_OPTIMIZATION_FIRED
    assert run["committed"] == PRE_OPTIMIZATION_COMMITTED
    assert run["packets_sent"] == PRE_OPTIMIZATION_PACKETS_SENT
    assert run["throughput"] == pytest.approx(PRE_OPTIMIZATION_THROUGHPUT)


def test_tracing_does_not_perturb_the_event_stream():
    """Trace hooks observe; they must not schedule events or consume
    randomness. A traced run therefore fires the *identical* pinned
    event sequence — tracing is free of Heisenberg effects, so span
    analysis describes exactly the run you would have had without it."""
    run = run_small_eris(tracing=True)
    assert run["digest"] == PRE_OPTIMIZATION_DIGEST
    assert run["fired"] == PRE_OPTIMIZATION_FIRED
    assert run["committed"] == PRE_OPTIMIZATION_COMMITTED
    assert run["packets_sent"] == PRE_OPTIMIZATION_PACKETS_SENT


def test_paranoid_codec_mode_is_bit_identical():
    """With every delivered payload round-tripped through the wire
    codec (each recipient gets its own decoded copy, as over a real
    transport), the simulation still fires the pinned event stream and
    reaches the identical protocol outcome — proof that no handler
    mutates a received message or relies on fan-out copies aliasing one
    payload object."""
    run = run_small_eris(paranoid_codec=True)
    assert run["digest"] == PRE_OPTIMIZATION_DIGEST
    assert run["fired"] == PRE_OPTIMIZATION_FIRED
    assert run["committed"] == PRE_OPTIMIZATION_COMMITTED
    assert run["packets_sent"] == PRE_OPTIMIZATION_PACKETS_SENT
    assert run["throughput"] == pytest.approx(PRE_OPTIMIZATION_THROUGHPUT)


def test_ewc2_paranoid_codec_mode_is_bit_identical():
    """The paranoid round-trip over the compact binary wire (EWC2) must
    reproduce the *same* pinned event stream as EWC1 and as the
    reference-passing fabric: the fast codec preserves every payload
    bit-exactly under full protocol traffic, not just in unit tests."""
    run = run_small_eris(paranoid_codec=True, wire="ewc2")
    assert run["digest"] == PRE_OPTIMIZATION_DIGEST
    assert run["fired"] == PRE_OPTIMIZATION_FIRED
    assert run["committed"] == PRE_OPTIMIZATION_COMMITTED
    assert run["packets_sent"] == PRE_OPTIMIZATION_PACKETS_SENT
    assert run["throughput"] == pytest.approx(PRE_OPTIMIZATION_THROUGHPUT)


def test_chain_off_leaves_pinned_sequence_untouched():
    """``sequencer_chain=0`` must be byte-identical to the paper's
    single-sequencer path: the chain hooks ride behind the existing
    abstraction, so with the chain off nothing about the event stream
    changes — the original digest still holds (also asserted by the
    tests above, restated here as the chain PR's explicit guarantee)."""
    run = run_small_eris(sequencer_chain=0)
    assert run["digest"] == PRE_OPTIMIZATION_DIGEST
    assert run["throughput"] == pytest.approx(PRE_OPTIMIZATION_THROUGHPUT)


def test_chain_mode_same_seed_runs_are_bit_identical():
    first = run_small_eris(sequencer_chain=3)
    second = run_small_eris(sequencer_chain=3)
    assert first == second


def test_chain_mode_matches_pinned_sequence():
    run = run_small_eris(sequencer_chain=3)
    assert run["digest"] == CHAIN_DIGEST
    assert run["fired"] == CHAIN_FIRED
    assert run["committed"] == CHAIN_COMMITTED
    assert run["packets_sent"] == CHAIN_PACKETS_SENT
    assert run["throughput"] == pytest.approx(CHAIN_THROUGHPUT)


def test_chain_mode_paranoid_codec_is_bit_identical():
    """Every chain message (ChainForward and the repair control plane)
    survives a wire round-trip per delivery without perturbing the
    pinned chain event stream."""
    run = run_small_eris(sequencer_chain=3, paranoid_codec=True)
    assert run["digest"] == CHAIN_DIGEST
    assert run["fired"] == CHAIN_FIRED
    assert run["committed"] == CHAIN_COMMITTED


def test_chain_mode_ewc2_paranoid_codec_is_bit_identical():
    """Chain traffic (ChainForward batches included) over the EWC2
    paranoid round-trip also reproduces the pinned chain stream."""
    run = run_small_eris(sequencer_chain=3, paranoid_codec=True,
                         wire="ewc2")
    assert run["digest"] == CHAIN_DIGEST
    assert run["fired"] == CHAIN_FIRED
    assert run["committed"] == CHAIN_COMMITTED


# -- telemetry vs the pinned stream ----------------------------------------

def test_metrics_instrumentation_leaves_pinned_sequence_untouched():
    """Registering every component's pull-gauges (the telemetry-off
    configuration of the observability stack) schedules nothing and
    consumes no randomness: the pinned pre-optimization digest must
    hold bit-for-bit with instrumentation on."""
    run = run_small_eris(instrument=True)
    assert run["digest"] == PRE_OPTIMIZATION_DIGEST
    assert run["fired"] == PRE_OPTIMIZATION_FIRED
    assert run["committed"] == PRE_OPTIMIZATION_COMMITTED
    assert run["packets_sent"] == PRE_OPTIMIZATION_PACKETS_SENT
    assert run["throughput"] == pytest.approx(PRE_OPTIMIZATION_THROUGHPUT)


def test_sampled_metrics_series_is_byte_stable(tmp_path):
    """With the sampler on, the sim backend's exported series derives
    entirely from simulated time and deterministic counters: two seeded
    reruns must produce byte-identical files (and identical protocol
    outcomes as each other — the sampler's timer events shift the
    fingerprint relative to the sampler-off pinned digest, but
    deterministically so)."""
    a = tmp_path / "series-a.jsonl"
    b = tmp_path / "series-b.jsonl"
    first = run_small_eris(sample_series_to=str(a))
    second = run_small_eris(sample_series_to=str(b))
    assert first == second
    data = a.read_bytes()
    assert data == b.read_bytes()
    assert data  # non-empty: the sampler actually sampled
    assert first["committed"] == PRE_OPTIMIZATION_COMMITTED


# -- boundedness under churn ----------------------------------------------

def test_event_heap_stays_bounded_under_timer_restart_churn():
    """Restartable timers re-armed millions of times must not grow the
    heap: the deferred reschedule keeps one entry per live timer (the
    naive implementation left one cancelled entry per restart)."""
    loop = EventLoop()
    timers = [Timer(loop, 1.0, lambda: None) for _ in range(50)]
    for round_no in range(2000):
        for timer in timers:
            timer.start()
    # One in-heap entry per live timer; nothing accumulated.
    assert len(loop._heap) == len(timers)
    assert loop.pending == len(timers)


def test_event_heap_compaction_bounds_cancel_churn():
    """Timers cancelled outright (stop without restart) accumulate
    lazily-deleted entries only until compaction kicks in."""
    loop = EventLoop()
    for _ in range(50_000):
        timer = Timer(loop, 1.0, lambda: None)
        timer.start()
        timer.stop()
    live = 100
    keep = [Timer(loop, 1.0, lambda: None) for _ in range(live)]
    for timer in keep:
        timer.start()
    assert loop.compactions > 0
    # Cancelled garbage never dominates a large heap: bounded by the
    # compaction threshold, not by the 50k cancels.
    assert len(loop._heap) <= max(2 * (live + 1), EventLoop.COMPACT_MIN + 1)
    assert loop.pending == live


def test_link_clock_stays_bounded_under_endpoint_churn():
    """Short-lived endpoints (clients come and go) must not leak FIFO
    link-clock entries."""
    from repro.net.endpoint import Node

    class Sink(Node):
        def handle(self, src, message, packet):
            pass

    loop = EventLoop()
    net = Network(loop, NetConfig(jitter=0.0))
    server = Sink("server", net)
    for generation in range(200):
        client = Sink(f"client-{generation}", net)
        client.send("server", {"ping": generation})
        server.send(client.address, {"pong": generation})
        loop.run_until_idle()
        net.unregister(client.address)
    # Only links touching still-registered endpoints remain.
    assert len(net._link_clock) <= 2
    assert len(loop._heap) == 0


def test_unregister_prunes_both_link_directions():
    from repro.net.endpoint import Node

    class Sink(Node):
        def handle(self, src, message, packet):
            pass

    loop = EventLoop()
    net = Network(loop, NetConfig(jitter=0.0))
    Sink("a", net)
    Sink("b", net)
    net.endpoint("a").send("b", 1)
    net.endpoint("b").send("a", 2)
    loop.run_until_idle()
    assert ("a", "b") in net._link_clock and ("b", "a") in net._link_clock
    net.unregister("b")
    assert not any("b" in link for link in net._link_clock)
    assert all("b" not in link for link in net._link_clock)
