"""Property tests for the §5.2 multi-sequencing guarantees, measured
end to end through the simulated fabric."""

from hypothesis import given, settings
from hypothesis import strategies as st

import itertools

from repro.net.endpoint import Node
from repro.net.message import Packet
from repro.net.network import NetConfig, Network
from repro.net.sequencer import MultiSequencer, SequencerProfile
from repro.sim.event_loop import EventLoop


class Receiver(Node):
    def __init__(self, address, network, group):
        super().__init__(address, network)
        self.group = group
        self.stamps = []

    def deliver(self, packet: Packet) -> None:
        self.stamps.append(packet.multistamp)


def run_groupcasts(destinations: list[tuple[int, ...]], n_groups: int,
                   jitter: float = 5e-6):
    """Send one groupcast per entry; return receivers by group."""
    loop = EventLoop()
    net = Network(loop, NetConfig(jitter=jitter))
    receivers = {}
    for group in range(n_groups):
        receiver = Receiver(f"g{group}", net, group)
        receivers[group] = receiver
        net.groups.define(group, [receiver.address])
    MultiSequencer("seq", net, SequencerProfile.in_switch())
    net.install_sequencer_route("seq")
    sender = Receiver("client", net, -1)
    for groups in destinations:
        sender.send_groupcast(groups, payload := tuple(groups))
    loop.run_until_idle()
    return receivers


groups_strategy = st.lists(
    st.sets(st.integers(0, 3), min_size=1, max_size=4).map(
        lambda s: tuple(sorted(s))),
    min_size=1, max_size=30)


@settings(max_examples=60, deadline=None)
@given(groups_strategy)
def test_per_group_sequence_numbers_are_gapless(destinations):
    """Every receiver sees its group's sequence numbers 1..k with no
    gap and no duplicate (lossless network)."""
    receivers = run_groupcasts(destinations, n_groups=4)
    for group, receiver in receivers.items():
        seqs = sorted(s.seq_for(group) for s in receiver.stamps)
        assert seqs == list(range(1, len(seqs) + 1))


@settings(max_examples=60, deadline=None)
@given(groups_strategy)
def test_shared_destination_messages_are_comparable(destinations):
    """§5.2 partial ordering: any two messages sharing a destination
    group are comparable, and every common receiver agrees on their
    relative order."""
    receivers = run_groupcasts(destinations, n_groups=4)
    # Build per-group relative orders keyed by full stamp identity.
    orders = {}
    for group, receiver in receivers.items():
        orders[group] = {s.stamps: i
                         for i, s in enumerate(
                             sorted(receiver.stamps,
                                    key=lambda s: s.seq_for(group)))}
    for g1, g2 in itertools.combinations(orders, 2):
        shared = set(orders[g1]) & set(orders[g2])
        for a, b in itertools.combinations(shared, 2):
            first = orders[g1][a] < orders[g1][b]
            second = orders[g2][a] < orders[g2][b]
            assert first == second, (
                f"groups {g1} and {g2} disagree on the order of {a} "
                f"vs {b}")


@settings(max_examples=30, deadline=None)
@given(groups_strategy, st.integers(0, 2**32 - 1))
def test_multistamp_counters_independent_of_jitter(destinations, seed):
    """The assigned stamps depend only on sequencer arrival order, and
    per-group counts always equal the number of messages addressed to
    that group."""
    receivers = run_groupcasts(destinations, n_groups=4)
    for group, receiver in receivers.items():
        expected = sum(1 for d in destinations if group in d)
        assert len(receiver.stamps) == expected
