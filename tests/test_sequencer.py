"""Unit tests for multi-stamping sequencers, OUM, and the controller."""

import pytest

from repro.net.controller import ControllerConfig, SDNController
from repro.net.endpoint import Node
from repro.net.network import NetConfig, Network
from repro.net.oum import OUMSequencer
from repro.net.sequencer import MultiSequencer, SequencerProfile
from repro.sim.event_loop import EventLoop


class Sink(Node):
    def __init__(self, address, network):
        super().__init__(address, network)
        self.packets = []

    def deliver(self, packet):
        self.packets.append(packet)


def build(groups=2, members=3, oum=False):
    loop = EventLoop()
    net = Network(loop, NetConfig(jitter=0.0))
    sinks = {}
    for g in range(groups):
        addrs = [f"g{g}m{i}" for i in range(members)]
        sinks[g] = [Sink(a, net) for a in addrs]
        net.groups.define(g, addrs)
    cls = OUMSequencer if oum else MultiSequencer
    seq = cls("seq0", net, SequencerProfile.in_switch())
    net.install_sequencer_route("seq0")
    sender = Sink("client", net)
    return loop, net, seq, sinks, sender


def test_multistamp_one_counter_per_group():
    loop, net, seq, sinks, sender = build()
    sender.send_groupcast((0,), "a")
    sender.send_groupcast((1,), "b")
    sender.send_groupcast((0, 1), "c")
    loop.run_until_idle()
    assert seq.counters == {0: 2, 1: 2}
    last = sinks[0][0].packets[-1]
    assert last.multistamp.seq_for(0) == 2
    assert last.multistamp.seq_for(1) == 2


def test_all_group_members_receive_copies():
    loop, net, seq, sinks, sender = build()
    sender.send_groupcast((0, 1), "x")
    loop.run_until_idle()
    for group in (0, 1):
        for sink in sinks[group]:
            assert len(sink.packets) == 1
            assert sink.packets[0].payload == "x"


def test_stamps_are_consistent_across_recipients():
    loop, net, seq, sinks, sender = build()
    for i in range(10):
        sender.send_groupcast((0, 1), i)
    loop.run_until_idle()
    reference = [p.multistamp for p in sinks[0][0].packets]
    for group in (0, 1):
        for sink in sinks[group]:
            assert [p.multistamp for p in sink.packets] == reference


def test_epoch_attached_to_stamp():
    loop, net, seq, sinks, sender = build()
    seq.install_epoch(5)
    sender.send_groupcast((0,), "x")
    loop.run_until_idle()
    assert sinks[0][0].packets[0].multistamp.epoch == 5


def test_install_epoch_resets_counters():
    loop, net, seq, sinks, sender = build()
    sender.send_groupcast((0,), "x")
    loop.run_until_idle()
    assert seq.counters[0] == 1
    seq.install_epoch(2)
    assert seq.counters == {}
    sender.send_groupcast((0,), "y")
    loop.run_until_idle()
    assert sinks[0][0].packets[-1].multistamp.seq_for(0) == 1


def test_install_lower_epoch_rejected_after_stamping():
    loop, net, seq, sinks, sender = build()
    seq.install_epoch(5)
    sender.send_groupcast((0,), "x")
    loop.run_until_idle()
    with pytest.raises(ValueError):
        seq.install_epoch(4)


def test_profiles_match_table1_capacities():
    middlebox = SequencerProfile.middlebox()
    endhost = SequencerProfile.endhost()
    assert 1.0 / middlebox.per_packet_service == pytest.approx(6.19e6)
    assert 1.0 / endhost.per_packet_service == pytest.approx(1.61e6)
    assert middlebox.added_latency == pytest.approx(13.64e-6)
    assert endhost.added_latency == pytest.approx(24.60e-6)


def test_crashed_sequencer_stamps_nothing():
    loop, net, seq, sinks, sender = build()
    seq.crash()
    sender.send_groupcast((0,), "x")
    loop.run_until_idle()
    assert sinks[0][0].packets == []
    assert seq.packets_stamped == 0


def test_oum_single_global_counter():
    loop, net, seq, sinks, sender = build(oum=True)
    sender.send_groupcast((0,), "a")
    sender.send_groupcast((1,), "b")
    loop.run_until_idle()
    seqs = [p.multistamp.seq_for(OUMSequencer.GLOBAL_GROUP)
            for p in sinks[0][0].packets]
    assert seqs == [1, 2]


def test_oum_floods_every_member_of_every_group():
    loop, net, seq, sinks, sender = build(oum=True)
    sender.send_groupcast((0,), "only-for-group-0")
    loop.run_until_idle()
    for group in (0, 1):
        for sink in sinks[group]:
            assert len(sink.packets) == 1


def _controller_setup(n_seq=2):
    loop = EventLoop()
    net = Network(loop, NetConfig(jitter=0.0))
    seqs = [MultiSequencer(f"seq{i}", net) for i in range(n_seq)]
    controller = SDNController(
        "ctrl", net, [s.address for s in seqs],
        ControllerConfig(ping_interval=5e-3, failure_threshold=3,
                         reroute_delay=20e-3))
    controller.start()
    return loop, net, seqs, controller


def test_controller_installs_initial_route():
    loop, net, seqs, controller = _controller_setup()
    assert net.sequencer_address == "seq0"
    assert controller.current_epoch == 1


def test_healthy_sequencer_keeps_route():
    loop, net, seqs, controller = _controller_setup()
    loop.run(until=0.2)
    assert controller.failovers == 0
    assert net.sequencer_address == "seq0"


def test_failover_replaces_dead_sequencer():
    loop, net, seqs, controller = _controller_setup()
    loop.run(until=0.05)
    seqs[0].crash()
    loop.run(until=0.2)
    assert controller.failovers == 1
    assert net.sequencer_address == "seq1"
    assert seqs[1].epoch == 2
    assert controller.current_epoch == 2


def test_route_withdrawn_during_failover():
    loop, net, seqs, controller = _controller_setup()
    loop.run(until=0.05)
    seqs[0].crash()
    # run until just after detection but before reroute completes
    observed_none = []

    def probe():
        if net.sequencer_address is None:
            observed_none.append(loop.now)
        if loop.now < 0.2:
            loop.schedule(1e-3, probe)

    loop.schedule(1e-3, probe)
    loop.run(until=0.2)
    assert observed_none, "route should be withdrawn during failover"


def test_force_failover_skips_detection():
    loop, net, seqs, controller = _controller_setup()
    controller.force_failover()
    loop.run(until=0.05)
    assert controller.failovers == 1
    assert net.sequencer_address == "seq1"
