"""Unit tests for transaction identity types and validation."""

import pytest

from repro.core.transaction import IndependentTransaction, SlotId, TxnId


def test_txn_id_ordering_and_equality():
    a = TxnId("client-1", 1)
    b = TxnId("client-1", 2)
    c = TxnId("client-2", 1)
    assert a < b < c
    assert a == TxnId("client-1", 1)
    assert len({a, b, c, TxnId("client-1", 1)}) == 3


def test_slot_id_is_hashable_and_ordered():
    s1 = SlotId(0, 1, 5)
    s2 = SlotId(0, 1, 6)
    s3 = SlotId(0, 2, 1)
    assert s1 < s2 < s3   # epoch-major, sequence-minor within a shard
    assert len({s1, s2, s3}) == 3


def make_txn(**kwargs):
    defaults = dict(txn_id=TxnId("c", 1), proc="p", args={},
                    participants=(0,))
    defaults.update(kwargs)
    return IndependentTransaction(**defaults)


def test_participants_required():
    with pytest.raises(ValueError):
        make_txn(participants=())


def test_duplicate_participants_rejected():
    with pytest.raises(ValueError):
        make_txn(participants=(1, 1))


def test_is_distributed():
    assert not make_txn(participants=(0,)).is_distributed
    assert make_txn(participants=(0, 1)).is_distributed


def test_keys_on_filters_by_ownership():
    txn = make_txn(read_keys=frozenset([1, 2]),
                   write_keys=frozenset([2, 3]))
    reads, writes = txn.keys_on(lambda k: k % 2 == 0)
    assert reads == {2}
    assert writes == {2}


def test_default_kind_is_independent():
    assert make_txn().kind == "independent"
