"""Flight recorder: bounded ring semantics, tracer wiring, and the
auto-dump path that fires when a §6.7 checker fails.

The recorder is the always-on black box of real-transport runs: it must
cost nothing when disabled, stay O(1)/bounded when enabled, and leave a
readable JSONL window on disk exactly when something goes wrong.
"""

import json

import pytest

from repro.errors import InvariantViolation
from repro.obs import (
    FlightRecorder,
    Tracer,
    load_recorder_dump,
    load_trace,
    summarize_trace,
)
from repro.obs.trace import TraceEvent


def _event(i: int) -> TraceEvent:
    return TraceEvent(ts=float(i), kind="tick", node="n", cause=i)


# -- ring semantics --------------------------------------------------------

def test_ring_below_capacity_keeps_everything_in_order():
    rec = FlightRecorder(capacity=8)
    for i in range(5):
        rec.append(_event(i))
    assert len(rec) == 5
    assert rec.dropped == 0
    assert [e.cause for e in rec.events()] == [0, 1, 2, 3, 4]


def test_ring_wraparound_at_capacity_keeps_last_n_oldest_first():
    rec = FlightRecorder(capacity=4)
    for i in range(11):
        rec.append(_event(i))
    assert len(rec) == 4
    assert rec.appended == 11
    assert rec.dropped == 7
    assert [e.cause for e in rec.events()] == [7, 8, 9, 10]


def test_ring_exactly_at_capacity_boundary():
    rec = FlightRecorder(capacity=3)
    for i in range(3):
        rec.append(_event(i))
    assert rec.dropped == 0
    assert [e.cause for e in rec.events()] == [0, 1, 2]
    rec.append(_event(3))
    assert rec.dropped == 1
    assert [e.cause for e in rec.events()] == [1, 2, 3]


def test_ring_never_allocates_beyond_preallocated_capacity():
    rec = FlightRecorder(capacity=16)
    for i in range(1000):
        rec.append(_event(i))
    assert len(rec._ring) == 16


def test_disabled_recorder_retains_nothing():
    rec = FlightRecorder(capacity=8, enabled=False)
    before = list(rec._ring)
    for i in range(20):
        rec.append(_event(i))
    assert len(rec) == 0
    assert rec.appended == 0
    assert rec.events() == []
    # Allocation-free off path: the preallocated ring is untouched.
    assert rec._ring == before


def test_clear_resets_the_window():
    rec = FlightRecorder(capacity=4)
    for i in range(9):
        rec.append(_event(i))
    rec.clear()
    assert len(rec) == 0 and rec.dropped == 0
    rec.append(_event(42))
    assert [e.cause for e in rec.events()] == [42]


def test_capacity_must_be_positive():
    with pytest.raises(ValueError):
        FlightRecorder(capacity=0)


# -- tracer wiring ---------------------------------------------------------

def test_tracer_mirrors_events_into_the_ring():
    rec = FlightRecorder(capacity=8)
    tracer = Tracer(recorder=rec)
    tracer.record("apply", "r0", cause=1, slot=7)
    assert len(tracer.events) == 1
    assert len(rec) == 1
    assert rec.events()[0] is tracer.events[0]


def test_ring_only_tracer_retains_no_unbounded_list():
    """retain=False is the always-on configuration for long runs: the
    ring is the only place events land, so memory stays bounded no
    matter how long the run is."""
    rec = FlightRecorder(capacity=4)
    tracer = Tracer(recorder=rec, retain=False)
    for i in range(100):
        tracer.record("tick", "n", cause=i)
    assert tracer.events == []
    assert len(tracer) == 0
    assert len(rec) == 4
    assert [e.cause for e in rec.events()] == [96, 97, 98, 99]


# -- dump format -----------------------------------------------------------

def test_dump_roundtrip_with_header(tmp_path):
    rec = FlightRecorder(capacity=4)
    for i in range(6):
        rec.append(_event(i))
    path = str(tmp_path / "dump.jsonl")
    count = rec.dump(path, reason="test failure", context={"run": "x"})
    assert count == 4
    header, events = load_recorder_dump(path)
    assert header["reason"] == "test failure"
    assert header["capacity"] == 4
    assert header["recorded"] == 4
    assert header["dropped"] == 2
    assert header["run"] == "x"
    assert [e["cause"] for e in events] == [2, 3, 4, 5]


def test_dump_is_readable_by_trace_tooling(tmp_path):
    """The header line must not break trace consumers: load_trace +
    summarize_trace read a dump exactly like a full export."""
    rec = FlightRecorder(capacity=8)
    tracer = Tracer(recorder=rec, retain=False)
    tracer.record("send", "c0", cause=1, msg="TxnRequest", dst="r0")
    tracer.record("deliver", "r0", cause=1, src="c0", msg="TxnRequest")
    path = str(tmp_path / "dump.jsonl")
    rec.dump(path, reason="window")
    summary = summarize_trace(load_trace(path))
    assert summary["events"] == 2
    assert summary["sends"] == 1
    assert summary["delivers"] == 1


def test_load_recorder_dump_rejects_plain_trace(tmp_path):
    path = str(tmp_path / "plain.jsonl")
    with open(path, "w") as handle:
        handle.write(json.dumps({"ts": 0.0, "kind": "send", "node": "a",
                                 "cause": 1}) + "\n")
    with pytest.raises(ValueError):
        load_recorder_dump(path)


# -- auto-dump through run_all_checks --------------------------------------

def _append(node, shard, index, seq, txn, participants=(0, 1)):
    """A minimal log_append event (same shape test_trace_checkers uses)."""
    return dict(kind="log_append", node=node, shard=shard, index=index,
                entry_kind="txn", slot=[shard, 1, seq], txn=txn,
                participants=list(participants))


def test_run_all_checks_dumps_recorder_on_violation(tmp_path):
    """When a trace-backed checker raises, the ring must land on disk
    before the violation propagates."""
    from repro.harness.checkers import run_all_checks

    rec = FlightRecorder(capacity=16)
    tracer = Tracer(recorder=rec)
    # Two replicas of shard 0 disagree at the same log position: the
    # trace-backed replica-consistency checker fires.
    for event in (_append("r0.0", 0, 1, 1, "1:1"),
                  _append("r0.1", 0, 1, 2, "1:9")):
        kind = event.pop("kind")
        node = event.pop("node")
        tracer.record(kind, node, **event)
    path = str(tmp_path / "fr.jsonl")
    with pytest.raises(InvariantViolation):
        run_all_checks(trace=tracer, recorder=rec, recorder_path=path)
    header, events = load_recorder_dump(path)
    assert header["origin"] == "run_all_checks"
    assert header["recorded"] == len(rec)
    assert {e["kind"] for e in events} == {"log_append"}


def test_run_all_checks_leaves_no_dump_when_checks_pass(tmp_path):
    from repro.harness.checkers import run_all_checks

    rec = FlightRecorder(capacity=16)
    tracer = Tracer(recorder=rec)
    event = _append("r0.0", 0, 1, 1, "1:1", participants=(0,))
    tracer.record(event.pop("kind"), event.pop("node"), **event)
    path = tmp_path / "fr.jsonl"
    run_all_checks(trace=tracer, recorder=rec, recorder_path=str(path))
    assert not path.exists()
