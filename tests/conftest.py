"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import pytest

from repro.harness import ClusterConfig, build_cluster
from repro.net.network import NetConfig
from repro.sim.event_loop import EventLoop
from repro.sim.randomness import SplitRandom
from repro.store import ProcedureRegistry
from repro.workloads import Partitioner, register_ycsb_procedures
from repro.workloads.ycsb import load_ycsb


@pytest.fixture
def loop() -> EventLoop:
    return EventLoop()


@pytest.fixture
def rng() -> SplitRandom:
    return SplitRandom(1234)


def make_ycsb_cluster(system: str = "eris", n_shards: int = 2,
                      n_replicas: int = 3, n_keys: int = 200,
                      seed: int = 1, drop_rate: float = 0.0,
                      **config_kwargs):
    """A small cluster with YCSB procedures registered and keys loaded."""
    registry = ProcedureRegistry()
    register_ycsb_procedures(registry)
    partitioner = Partitioner(n_shards)
    config = ClusterConfig(system=system, n_shards=n_shards,
                           n_replicas=n_replicas, seed=seed,
                           net=NetConfig(drop_rate=drop_rate),
                           **config_kwargs)
    cluster = build_cluster(
        config, registry, partitioner,
        loader=lambda stores, p: load_ycsb(stores, p, n_keys))
    return cluster


def submit_and_wait(cluster, client, op, timeout: float = 0.5):
    """Submit one op on a SystemClient and drive the loop until done."""
    results = []
    client.submit(op, results.append)
    deadline = cluster.loop.now + timeout
    while not results and cluster.loop.now < deadline:
        cluster.loop.run(until=min(deadline, cluster.loop.now + 1e-3))
        if cluster.loop.pending == 0 and not results:
            break
    assert results, "operation did not complete in time"
    return results[0]


def drive(cluster, duration: float) -> None:
    cluster.loop.run(until=cluster.loop.now + duration)
