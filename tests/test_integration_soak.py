"""Randomized end-to-end soak tests: many seeds, mixed faults, and the
§6.7 invariants checked after every run.

These are the executable stand-in for the paper's TLA+ model checking:
each seed produces a different interleaving of transactions, packet
loss, and (in the hardest variant) a DL crash; every run must end with
serializable, atomic, replica-consistent state.
"""

import pytest

from repro.baselines.common import WorkloadOp
from repro.harness.checkers import run_all_checks

from conftest import drive, make_ycsb_cluster


def rmw_op(keys, partitioner):
    return WorkloadOp(proc="ycsb_rmw", args={"keys": tuple(keys)},
                      participants=partitioner.participants_for(keys),
                      read_keys=frozenset(keys), write_keys=frozenset(keys))


def swap_op(k1, k2, partitioner):
    keys = frozenset([k1, k2])
    return WorkloadOp(proc="ycsb_swap", args={},
                      participants=partitioner.participants_for(keys),
                      read_keys=keys, write_keys=keys, is_general=True,
                      compute=lambda v: {k1: v.get(k2, 0),
                                         k2: v.get(k1, 0)})


@pytest.mark.parametrize("seed", [1, 2, 3, 4, 5])
def test_soak_lossy_network(seed):
    cluster = make_ycsb_cluster(n_shards=3, seed=seed, drop_rate=0.02,
                                n_keys=60)
    rng = __import__("random").Random(seed)
    clients = [cluster.make_client() for _ in range(8)]
    done = []
    for i in range(60):
        if rng.random() < 0.3:
            keys = rng.sample(range(60), 2)
        else:
            keys = [rng.randrange(60)]
        clients[i % 8].submit(rmw_op(keys, cluster.partitioner),
                              done.append)
    drive(cluster, 0.3)
    cluster.set_drop_rate(0.0)
    drive(cluster, 0.2)
    committed = sum(1 for r in done if r.committed)
    assert committed >= 55
    run_all_checks(cluster)


@pytest.mark.parametrize("seed", [11, 12, 13])
def test_soak_loss_plus_generals(seed):
    cluster = make_ycsb_cluster(n_shards=2, seed=seed, drop_rate=0.01,
                                n_keys=40)
    rng = __import__("random").Random(seed)
    done = []
    for i in range(40):
        client = cluster.make_client()
        if rng.random() < 0.3:
            k1 = rng.randrange(0, 40, 2)       # shard 0
            k2 = rng.randrange(1, 40, 2)       # shard 1
            client.submit(swap_op(k1, k2, cluster.partitioner),
                          done.append)
        else:
            client.submit(rmw_op([rng.randrange(40)],
                                 cluster.partitioner), done.append)
    drive(cluster, 0.3)
    cluster.set_drop_rate(0.0)
    drive(cluster, 0.3)
    committed = sum(1 for r in done if r.committed)
    assert committed >= 36
    run_all_checks(cluster)
    # No locks may remain held once everything quiesced.
    for replicas in cluster.replicas.values():
        for replica in replicas:
            assert not replica.engine.pending_generals


@pytest.mark.parametrize("seed", [21, 22])
def test_soak_loss_plus_dl_crash(seed):
    cluster = make_ycsb_cluster(n_shards=2, seed=seed, drop_rate=0.005,
                                n_keys=40)
    rng = __import__("random").Random(seed)
    clients = [cluster.make_client() for _ in range(6)]
    done = []

    def pump(client, budget):
        if budget == 0:
            return
        keys = ([rng.randrange(40)] if rng.random() < 0.6
                else rng.sample(range(40), 2))
        client.submit(rmw_op(keys, cluster.partitioner),
                      lambda r: (done.append(r), pump(client, budget - 1)))

    for client in clients:
        pump(client, 15)
    drive(cluster, 0.05)
    cluster.replicas[0][0].crash()   # DL of shard 0
    drive(cluster, 0.6)
    cluster.set_drop_rate(0.0)
    drive(cluster, 0.4)
    committed = sum(1 for r in done if r.committed)
    assert committed >= 6 * 15 - 8
    run_all_checks(cluster)
