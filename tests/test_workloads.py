"""Unit tests for Zipf, the partitioner, and YCSB+T generation."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.sim.randomness import SplitRandom
from repro.store.kv import KVStore
from repro.store.procedures import ProcedureRegistry, TxnContext
from repro.workloads import (
    Partitioner,
    YCSBConfig,
    YCSBWorkload,
    ZipfGenerator,
    register_ycsb_procedures,
)
from repro.workloads.ycsb import load_ycsb


# -- Zipf ----------------------------------------------------------------

def test_zipf_values_in_range():
    gen = ZipfGenerator(100, 0.9, SplitRandom(1))
    for _ in range(1000):
        assert 0 <= gen.next() < 100


def test_zipf_theta_zero_is_uniform():
    gen = ZipfGenerator(10, 0.0, SplitRandom(1))
    counts = [0] * 10
    for _ in range(10_000):
        counts[gen.next()] += 1
    assert max(counts) < 2 * min(counts)


def test_zipf_skew_concentrates_on_low_ranks():
    skewed = ZipfGenerator(1000, 0.99, SplitRandom(1))
    hits = sum(1 for _ in range(5000) if skewed.next() < 10)
    assert hits > 1500   # top-1% of keys get a large share


def test_zipf_more_skew_more_concentration():
    def top1_share(theta):
        gen = ZipfGenerator(1000, theta, SplitRandom(42))
        return sum(1 for _ in range(5000) if gen.next() < 10)
    assert top1_share(0.99) > top1_share(0.5) > top1_share(0.0)


def test_zipf_clamps_theta_at_one():
    gen = ZipfGenerator(100, 1.5, SplitRandom(1))
    assert gen.theta < 1.0
    assert 0 <= gen.next() < 100


def test_zipf_rejects_bad_parameters():
    with pytest.raises(ValueError):
        ZipfGenerator(0, 0.5, SplitRandom(1))
    with pytest.raises(ValueError):
        ZipfGenerator(10, -0.1, SplitRandom(1))


def test_zipf_distinct_pair():
    gen = ZipfGenerator(50, 0.9, SplitRandom(1))
    for _ in range(200):
        a, b = gen.next_distinct_pair()
        assert a != b


@settings(max_examples=50, deadline=None)
@given(st.integers(min_value=2, max_value=500),
       st.floats(min_value=0.0, max_value=1.2, allow_nan=False))
def test_zipf_always_in_bounds(n, theta):
    gen = ZipfGenerator(n, theta, SplitRandom(9))
    assert all(0 <= gen.next() < n for _ in range(50))


# -- Partitioner ----------------------------------------------------------

def test_partitioner_is_deterministic_and_total():
    part = Partitioner(4)
    for key in [0, 1, "alpha", ("tuple", 3), 12345]:
        shard = part.shard_of(key)
        assert 0 <= shard < 4
        assert part.shard_of(key) == shard


def test_partitioner_owns_fn_matches_shard_of():
    part = Partitioner(3)
    owns = [part.owns_fn(s) for s in range(3)]
    for key in range(30):
        owners = [s for s in range(3) if owns[s](key)]
        assert owners == [part.shard_of(key)]


def test_partitioner_replicated_keys_owned_everywhere():
    part = Partitioner(3, replicated=lambda k: isinstance(k, str))
    assert all(part.owns_fn(s)("everywhere") for s in range(3))
    assert part.participants_for(["everywhere", 4]) == \
        (part.shard_of(4),)


def test_participants_sorted_unique():
    part = Partitioner(5)
    participants = part.participants_for([0, 5, 10, 3])
    assert participants == tuple(sorted(set(participants)))


def test_partitioner_rejects_zero_shards():
    with pytest.raises(ValueError):
        Partitioner(0)


# -- YCSB+T ----------------------------------------------------------------

def make_workload(**kwargs):
    part = Partitioner(kwargs.pop("n_shards", 3))
    config = YCSBConfig(**kwargs)
    return YCSBWorkload(config, part, SplitRandom(5)), part


def test_srw_ops_are_single_key_single_shard():
    wl, part = make_workload(workload="srw", n_keys=100)
    reads = writes = 0
    for _ in range(200):
        op = wl.next_op()
        assert len(op.participants) == 1
        if op.proc == "ycsb_read":
            reads += 1
        else:
            assert op.proc == "ycsb_write"
            writes += 1
    assert abs(reads - writes) < 80   # roughly 1:1


def test_mrmw_distributed_fraction_respected():
    wl, part = make_workload(workload="mrmw", n_keys=100,
                             distributed_fraction=0.3)
    multi = sum(1 for _ in range(500) if wl.next_op().proc == "ycsb_rmw")
    assert 0.2 < multi / 500 < 0.4


def test_mrmw_pairs_span_distinct_shards():
    wl, part = make_workload(workload="mrmw", n_keys=100,
                             distributed_fraction=1.0)
    for _ in range(100):
        op = wl.next_op()
        if op.proc != "ycsb_rmw":
            continue
        shards = {part.shard_of(k) for k in op.args["keys"]}
        assert len(shards) == 2
        assert op.participants == tuple(sorted(shards))


def test_crmw_ops_are_general_with_swap_compute():
    wl, part = make_workload(workload="crmw", n_keys=100,
                             distributed_fraction=1.0)
    op = next(o for o in iter(wl.next_op, None) if o.is_general)
    k1, k2 = op.args["keys"]
    writes = op.compute({k1: "v1", k2: "v2"})
    assert writes == {k1: "v2", k2: "v1"}


def test_invalid_workload_rejected():
    with pytest.raises(ConfigurationError):
        YCSBConfig(workload="nope").validate()
    with pytest.raises(ConfigurationError):
        YCSBConfig(distributed_fraction=2.0).validate()
    with pytest.raises(ConfigurationError):
        YCSBConfig(n_keys=1).validate()


def test_ycsb_procedures_respect_ownership():
    registry = ProcedureRegistry()
    register_ycsb_procedures(registry)
    store = KVStore()
    ctx = TxnContext(store, owns=lambda k: k == 1)
    registry.execute("ycsb_write", ctx, {"key": 2, "value": 9})
    assert len(store) == 0   # not owned, not written
    registry.execute("ycsb_rmw", ctx, {"keys": (1, 2)})
    assert store.get(1) == 1
    assert 2 not in store


def test_load_ycsb_places_keys_on_owners():
    part = Partitioner(2)
    stores = {0: [KVStore(), KVStore()], 1: [KVStore()]}
    load_ycsb(stores, part, 10)
    for key in range(10):
        shard = part.shard_of(key)
        for store in stores[shard]:
            assert store.get(key) == 0
        other = 1 - shard
        assert key not in stores[other][0]
