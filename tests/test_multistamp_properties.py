"""Randomized property tests of the multi-stamp design (§5.3).

Driven by seeded stdlib ``random`` — fully deterministic, no extra
dependencies. Three properties the in-network concurrency control
relies on:

1. **gap-free counters** — within one epoch, each group's sequence
   numbers are exactly 1..n: every stamped packet is accounted for and
   a receiver can detect any drop as a hole;
2. **cross-group atomicity** — two packets sharing several destination
   groups are ordered the same way in *all* of them (the multi-stamp is
   assigned atomically), which is what makes the per-shard orders
   globally serializable;
3. **epoch monotonicity** — across sequencer failovers, epochs only
   increase, and within each epoch counters restart gap-free from 1.
"""

import random

import pytest

from repro.net.controller import ControllerConfig, SDNController
from repro.net.endpoint import Node
from repro.net.network import NetConfig, Network
from repro.net.sequencer import MultiSequencer, SequencerProfile
from repro.obs import Tracer
from repro.sim.event_loop import EventLoop

N_GROUPS = 4


class Sink(Node):
    def __init__(self, address, network):
        super().__init__(address, network)
        self.packets = []

    def deliver(self, packet):
        self.packets.append(packet)


def build(n_sequencers=1):
    loop = EventLoop()
    net = Network(loop, NetConfig(jitter=0.0))
    net.tracer = Tracer(clock=lambda: loop.now)
    for g in range(N_GROUPS):
        addrs = [f"g{g}m0"]
        for a in addrs:
            Sink(a, net)
        net.groups.define(g, addrs)
    seqs = [MultiSequencer(f"seq{i}", net, SequencerProfile.in_switch())
            for i in range(n_sequencers)]
    net.install_sequencer_route("seq0")
    sender = Sink("client", net)
    return loop, net, seqs, sender


def _random_groups(rng: random.Random) -> tuple[int, ...]:
    k = rng.randint(1, N_GROUPS)
    return tuple(sorted(rng.sample(range(N_GROUPS), k)))


def _stamp_events(net):
    return [e.data for e in net.tracer.select("stamp")]


def test_per_group_counters_are_gap_free():
    rng = random.Random(0xE415)
    loop, net, seqs, sender = build()
    expected = {g: 0 for g in range(N_GROUPS)}
    for _ in range(300):
        groups = _random_groups(rng)
        for g in groups:
            expected[g] += 1
        sender.send_groupcast(groups, "txn")
    loop.run_until_idle()
    seen: dict[int, list[int]] = {g: [] for g in range(N_GROUPS)}
    for stamp in _stamp_events(net):
        for gid, seq in stamp["stamps"]:
            seen[gid].append(seq)
    for g in range(N_GROUPS):
        # In assignment order: strictly increasing by exactly one, from
        # 1 to the number of packets addressed to the group — no gap,
        # no duplicate, nothing unaccounted.
        assert seen[g] == list(range(1, expected[g] + 1))


def test_cross_group_stamp_atomicity():
    rng = random.Random(0xA70)
    loop, net, seqs, sender = build()
    for _ in range(200):
        sender.send_groupcast(_random_groups(rng), "txn")
    loop.run_until_idle()
    stamps = [dict(s["stamps"]) for s in _stamp_events(net)]
    for i, a in enumerate(stamps):
        for b in stamps[i + 1:]:
            shared = sorted(set(a) & set(b))
            if len(shared) < 2:
                continue
            # a was stamped before b, so b's seq must be higher in
            # EVERY shared group — orders never cross.
            assert all(a[g] < b[g] for g in shared), \
                f"crossed stamp order on shared groups {shared}: {a} vs {b}"


def test_receivers_see_identical_multistamp():
    rng = random.Random(7)
    loop, net, seqs, sender = build()
    for _ in range(50):
        sender.send_groupcast(_random_groups(rng), "txn")
    loop.run_until_idle()
    by_cause: dict[int, set] = {}
    for g in range(N_GROUPS):
        for packet in net.endpoint(f"g{g}m0").packets:
            by_cause.setdefault(packet.trace_id, set()).add(
                (packet.multistamp.epoch, packet.multistamp.stamps))
    assert by_cause
    for cause, stamps in by_cause.items():
        assert len(stamps) == 1, \
            f"recipients of message {cause} saw different stamps: {stamps}"


def test_epoch_monotone_and_gap_free_across_failovers():
    rng = random.Random(0xEB0C)
    loop, net, seqs, sender = build(n_sequencers=3)
    controller = SDNController(
        "ctrl", net, [s.address for s in seqs],
        ControllerConfig(ping_interval=1e-3, failure_threshold=2,
                         reroute_delay=4e-3))
    controller.start()
    # Sends spread over 60 ms; two failovers forced mid-stream. Packets
    # hitting the withdrawn route are dropped — the properties must
    # hold for whatever *was* stamped.
    for _ in range(300):
        loop.schedule(rng.uniform(0.0, 60e-3), sender.send_groupcast,
                      _random_groups(rng), "txn")
    loop.schedule(15e-3, controller.force_failover)
    loop.schedule(35e-3, controller.force_failover)
    loop.run(until=80e-3)

    stamps = _stamp_events(net)
    assert controller.failovers == 2
    assert controller.current_epoch == 3
    epochs = [s["epoch"] for s in stamps]
    assert set(epochs) == {1, 2, 3}          # stamping happened in all
    assert epochs == sorted(epochs), "epoch went backwards"
    # Within each epoch, every group's counter restarts at 1, gap-free.
    per_space: dict[tuple[int, int], list[int]] = {}
    for stamp in stamps:
        for gid, seq in stamp["stamps"]:
            per_space.setdefault((stamp["epoch"], gid), []).append(seq)
    for (epoch, gid), seqs_seen in per_space.items():
        assert seqs_seen == list(range(1, len(seqs_seen) + 1)), \
            f"gap in epoch {epoch} group {gid}: {seqs_seen}"
    # Some sends landed in the black-hole window.
    assert net.tracer.count("drop") > 0


def test_install_epoch_must_increase_once_stamped():
    loop, net, seqs, sender = build()
    sender.send_groupcast((0,), "txn")
    loop.run_until_idle()
    assert seqs[0].packets_stamped == 1
    with pytest.raises(ValueError):
        seqs[0].install_epoch(1)             # same epoch: rejected
    seqs[0].install_epoch(2)                 # higher: counters restart
    assert seqs[0].counters == {}
