"""Unit tests for measurement utilities."""

import math

import pytest

from repro.sim.stats import LatencyRecorder, ThroughputMeter, TimeSeries


def test_latency_mean_and_percentiles():
    recorder = LatencyRecorder()
    for value in range(1, 101):
        recorder.record(0.0, value / 1000.0)
    assert recorder.mean() == pytest.approx(0.0505)
    assert recorder.percentile(50) == pytest.approx(0.050)
    assert recorder.percentile(99) == pytest.approx(0.099)
    assert recorder.median() == recorder.percentile(50)


def test_latency_window_filters_samples():
    recorder = LatencyRecorder()
    recorder.open_window(1.0, 2.0)
    recorder.record(0.5, 100.0)   # before window
    recorder.record(1.5, 1.0)     # inside
    recorder.record(2.5, 100.0)   # after
    assert recorder.samples == [1.0]


def test_latency_empty_is_nan():
    recorder = LatencyRecorder()
    assert math.isnan(recorder.mean())
    assert math.isnan(recorder.percentile(99))


def test_throughput_rate():
    meter = ThroughputMeter()
    meter.open_window(0.0, 2.0)
    for t in (0.5, 1.0, 1.5, 2.5):
        meter.record(t)
    assert meter.count == 3
    assert meter.total_count == 4
    assert meter.rate() == pytest.approx(1.5)


def test_throughput_without_window_is_nan():
    meter = ThroughputMeter()
    meter.record(1.0)
    assert math.isnan(meter.rate())


def test_timeseries_buckets():
    series = TimeSeries(bucket_width=1.0)
    for t in (0.1, 0.2, 1.5, 3.9):
        series.record(t)
    points = series.series()
    assert points[0] == (0.5, 2.0)
    assert points[1] == (1.5, 1.0)
    assert points[2] == (2.5, 0.0)   # empty bucket reported as zero
    assert points[3] == (3.5, 1.0)


def test_timeseries_origin_shift():
    series = TimeSeries(bucket_width=1.0, origin=10.0)
    series.record(10.5)
    assert series.series() == [(10.5, 1.0)]


def test_timeseries_empty():
    assert TimeSeries(bucket_width=1.0).series() == []


def test_percentile_nearest_rank_pinned_semantics():
    """Nearest-rank edges: p0 is the minimum (not an out-of-range
    index), p100 the maximum, p50 the ceil(n/2)-th smallest."""
    recorder = LatencyRecorder()
    for value in (5.0, 1.0, 3.0, 2.0, 4.0):
        recorder.record(0.0, value)
    assert recorder.percentile(0) == 1.0
    assert recorder.percentile(100) == 5.0
    assert recorder.percentile(50) == 3.0
    assert recorder.percentile(40) == 2.0   # ceil(0.4 * 5) = rank 2
    assert recorder.percentile(41) == 3.0   # ceil(0.41 * 5) = rank 3


def test_percentile_single_sample_all_edges():
    recorder = LatencyRecorder()
    recorder.record(0.0, 7.0)
    assert recorder.percentile(0) == 7.0
    assert recorder.percentile(50) == 7.0
    assert recorder.percentile(100) == 7.0


def test_percentile_rejects_out_of_range():
    recorder = LatencyRecorder()
    recorder.record(0.0, 1.0)
    with pytest.raises(ValueError):
        recorder.percentile(-0.1)
    with pytest.raises(ValueError):
        recorder.percentile(100.1)
