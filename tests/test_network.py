"""Unit tests for the fabric: delivery, FIFO, drops, groupcast routing."""

import pytest

from repro.errors import NetworkError
from repro.net.endpoint import Node
from repro.net.message import GroupcastHeader, MultiStamp, Packet
from repro.net.network import NetConfig, Network
from repro.sim.event_loop import EventLoop


class Recorder(Node):
    def __init__(self, address, network):
        super().__init__(address, network)
        self.received = []

    def handle(self, src, message, packet):
        self.received.append((src, message, self.loop.now))


def make_net(**kwargs):
    loop = EventLoop()
    net = Network(loop, NetConfig(**kwargs))
    return loop, net


def test_unicast_delivery_with_latency():
    loop, net = make_net(base_latency=10e-6, jitter=0.0)
    a = Recorder("a", net)
    b = Recorder("b", net)
    a.send("b", "hello")
    loop.run_until_idle()
    assert len(b.received) == 1
    src, msg, at = b.received[0]
    assert (src, msg) == ("a", "hello")
    assert at == pytest.approx(10e-6)


def test_fifo_links_preserve_order():
    loop, net = make_net(base_latency=10e-6, jitter=50e-6)
    a = Recorder("a", net)
    b = Recorder("b", net)
    for i in range(50):
        a.send("b", i)
    loop.run_until_idle()
    assert [m for _, m, _ in b.received] == list(range(50))


def test_non_fifo_can_reorder():
    loop, net = make_net(base_latency=1e-6, jitter=100e-6, fifo_links=False)
    a = Recorder("a", net)
    b = Recorder("b", net)
    for i in range(50):
        a.send("b", i)
    loop.run_until_idle()
    assert sorted(m for _, m, _ in b.received) == list(range(50))
    assert [m for _, m, _ in b.received] != list(range(50))


def test_drop_rate_loses_packets():
    loop, net = make_net(drop_rate=0.5, jitter=0.0)
    a = Recorder("a", net)
    b = Recorder("b", net)
    for i in range(200):
        a.send("b", i)
    loop.run_until_idle()
    assert 0 < len(b.received) < 200
    assert net.packets_dropped == 200 - len(b.received)


def test_lossless_addresses_exempt_from_drops():
    loop, net = make_net(drop_rate=0.9999, jitter=0.0)
    a = Recorder("a", net)
    b = Recorder("b", net)
    net.lossless.add("b")
    for i in range(50):
        a.send("b", i)
    loop.run_until_idle()
    assert len(b.received) == 50


def test_drop_filter_is_deterministic():
    loop, net = make_net()
    a = Recorder("a", net)
    b = Recorder("b", net)
    net.drop_filter = lambda pkt: pkt.payload == "drop-me"
    a.send("b", "drop-me")
    a.send("b", "keep-me")
    loop.run_until_idle()
    assert [m for _, m, _ in b.received] == ["keep-me"]


def test_send_to_unknown_endpoint_is_lost():
    loop, net = make_net()
    a = Recorder("a", net)
    a.send("ghost", "boo")
    loop.run_until_idle()
    assert net.packets_dropped == 1


def test_crashed_node_drops_deliveries():
    loop, net = make_net()
    a = Recorder("a", net)
    b = Recorder("b", net)
    b.crash()
    a.send("b", "x")
    loop.run_until_idle()
    assert b.received == []


def test_duplicate_address_rejected():
    loop, net = make_net()
    Recorder("a", net)
    with pytest.raises(NetworkError):
        Recorder("a", net)


def test_unsequenced_groupcast_fans_out_directly():
    loop, net = make_net()
    members = [Recorder(f"m{i}", net) for i in range(3)]
    net.groups.define(0, [m.address for m in members])
    sender = Recorder("s", net)
    sender.send_groupcast((0,), "news", sequenced=False)
    loop.run_until_idle()
    assert all(len(m.received) == 1 for m in members)


def test_sequenced_groupcast_blackholes_without_route():
    loop, net = make_net()
    members = [Recorder(f"m{i}", net) for i in range(3)]
    net.groups.define(0, [m.address for m in members])
    sender = Recorder("s", net)
    sender.send_groupcast((0,), "lost")
    loop.run_until_idle()
    assert all(m.received == [] for m in members)
    assert net.packets_dropped == 1


def test_fanout_copies_counted_separately_from_sends():
    """One groupcast is one protocol-level send; the three per-member
    copies land in ``fanout_copies`` only. Both backends (sim fabric
    and UDP runtime) follow this split — see the matching test in
    test_runtime_udp.py."""
    loop, net = make_net()
    members = [Recorder(f"m{i}", net) for i in range(3)]
    net.groups.define(0, [m.address for m in members])
    sender = Recorder("s", net)
    sender.send_groupcast((0,), "news", sequenced=False)
    loop.run_until_idle()
    assert net.packets_sent == 1
    assert net.fanout_copies == 3
    assert net.packets_delivered == 3
    sender.send("m0", "direct")          # unicast adds no fan-out copy
    loop.run_until_idle()
    assert net.packets_sent == 2
    assert net.fanout_copies == 3


def test_unknown_wire_format_rejected():
    from repro.runtime.codec import CodecError
    with pytest.raises(CodecError):
        NetConfig(wire="ewc9").validate()


def test_invalid_drop_rate_rejected():
    with pytest.raises(NetworkError):
        NetConfig(drop_rate=1.5).validate()
    with pytest.raises(NetworkError):
        NetConfig(base_latency=-1.0).validate()


def test_cpu_model_serializes_processing():
    loop, net = make_net(base_latency=10e-6, jitter=0.0)

    class Busy(Recorder):
        msg_service_time = 100e-6

    a = Recorder("a", net)
    b = Busy("b", net)
    a.send("b", 1)
    a.send("b", 2)
    loop.run_until_idle()
    times = [at for _, _, at in b.received]
    assert times[0] == pytest.approx(10e-6 + 100e-6)
    assert times[1] == pytest.approx(10e-6 + 200e-6, rel=1e-3)


def test_busy_charges_extra_time():
    loop, net = make_net(base_latency=10e-6, jitter=0.0)

    class Exec(Recorder):
        msg_service_time = 10e-6

        def handle(self, src, message, packet):
            super().handle(src, message, packet)
            self.busy(1e-3)

    a = Recorder("a", net)
    b = Exec("b", net)
    a.send("b", 1)
    a.send("b", 2)
    loop.run_until_idle()
    assert b.received[1][2] - b.received[0][2] >= 1e-3


def test_unknown_message_type_raises():
    loop, net = make_net()

    class Strict(Node):
        pass

    Strict("strict", net)
    sender = Recorder("s", net)
    sender.send("strict", object())
    with pytest.raises(NetworkError):
        loop.run_until_idle()


def test_multistamp_accessors():
    stamp = MultiStamp(epoch=2, stamps=((0, 5), (3, 9)))
    assert stamp.seq_for(0) == 5
    assert stamp.seq_for(3) == 9
    assert stamp.has_group(3)
    assert not stamp.has_group(1)
    assert stamp.groups == (0, 3)
    with pytest.raises(KeyError):
        stamp.seq_for(7)


def test_groupcast_header_rejects_duplicates():
    with pytest.raises(ValueError):
        GroupcastHeader((1, 1))


def test_packet_copy_to_shares_payload():
    packet = Packet(src="a", dst=None, payload={"k": 1},
                    groupcast=GroupcastHeader((0,)))
    clone = packet.copy_to("b")
    assert clone.dst == "b"
    assert clone.payload is packet.payload
    assert clone.packet_id != packet.packet_id
