"""Unit tests for the §5.4 in-switch resource analysis."""

import pytest

from repro.errors import ConfigurationError
from repro.net.switch_resources import (
    SwitchModel,
    rmt_high,
    rmt_low,
    validate_deployment,
)


def test_paper_alu_bounds():
    """RMT: 32 stages x 4-6 register ALUs = 128-192 destinations."""
    assert rmt_low().alu_bound() == 128
    assert rmt_high().alu_bound() == 192


def test_paper_header_vector_bound():
    """512-byte PHV, 32-bit stamp slots: 116 destinations (§5.4)."""
    assert rmt_low().header_vector_bound() == 116
    assert rmt_high().header_vector_bound() == 116


def test_effective_limit_is_minimum():
    assert rmt_low().max_destinations() == 116   # PHV binds
    tiny = SwitchModel(name="tiny", stages=4, register_alus_per_stage=2,
                       header_vector_bytes=512)
    assert tiny.max_destinations() == 8          # ALUs bind


def test_supports_shard_counts():
    model = rmt_low()
    assert model.supports(15)        # the paper's deployment
    assert model.supports(116)
    assert not model.supports(117)


def test_validate_deployment_fits():
    report = validate_deployment(15)
    assert report["fits"]
    assert not report["needs_global_special_case"]
    assert report["max_destinations"] == 116


def test_validate_deployment_wide_transactions_flagged():
    """Systems spanning >100 shards need the paper's special-case
    handling for global messages."""
    report = validate_deployment(200)
    assert not report["fits"]
    assert report["needs_global_special_case"]
    # But if the workload's widest transaction is narrow, it fits.
    narrow = validate_deployment(200, max_participants=10)
    assert narrow["fits"]


def test_validate_rejects_useless_switch():
    useless = SwitchModel(name="none", stages=1,
                          register_alus_per_stage=1,
                          header_vector_bytes=48)
    with pytest.raises(ConfigurationError):
        validate_deployment(1, model=useless)


def test_negative_resources_rejected():
    with pytest.raises(ConfigurationError):
        SwitchModel(name="bad", stages=0, register_alus_per_stage=4,
                    header_vector_bytes=512)
