"""Wire-codec properties: every registered message round-trips.

The refactor to a runtime/transport abstraction made the codec the
boundary every real-transport message crosses, so its contract is
checked exhaustively here:

- every dataclass in the wire registry round-trips
  ``decode(encode(m)) == m``, both with all optional fields populated
  and with every optional left at ``None``/default — nested composites
  (MultiStamp inside TxnRecord inside HasTxn, logs of entries inside
  ViewChange) included;
- packets round-trip with headers and ids intact;
- unknown message types, truncated buffers, foreign bytes, and
  malformed documents raise the typed :class:`CodecError`, never a
  bare ``KeyError``/``JSONDecodeError``.
"""

from __future__ import annotations

import dataclasses
import typing

import pytest

from repro.core.messages import HasTxn, PeerTxnResponse, TxnRecord, ViewChange
from repro.core.transaction import IndependentTransaction, SlotId, TxnId
from repro.net.message import GroupcastHeader, MultiStamp, Packet
from repro.runtime.codec import (
    CodecError,
    decode_message,
    decode_packet,
    encode_message,
    encode_packet,
    registered_message_types,
)

#: Both wire formats must satisfy every contract in this file: EWC1 is
#: the paranoid-codec reference, EWC2 the compact binary fast path.
WIRES = ("ewc1", "ewc2")

# -- generic sample fabrication -------------------------------------------
#
# Build an instance of every registered wire dataclass from its type
# hints. The goal is breadth (the whole registry, enforced below), with
# the trickiest nesting covered again by hand-built cases.

_SAMPLE_TXN_ID = TxnId(client="client-1", seq=7)
_SAMPLE_SLOT = SlotId(shard=1, epoch=2, seq=33)
_SAMPLE_STAMP = MultiStamp(epoch=2, stamps=((0, 11), (1, 12)))
_SAMPLE_TXN = IndependentTransaction(
    txn_id=_SAMPLE_TXN_ID, proc="ycsb_rmw", args={"keys": (3, 4)},
    participants=(0, 1), read_keys=frozenset({3, 4}),
    write_keys=frozenset({4}), kind="independent")
_SAMPLE_RECORD = TxnRecord(txn=_SAMPLE_TXN, multistamp=_SAMPLE_STAMP)


def _sample_for(hint, field_name: str):
    """A populated sample value for one type hint."""
    origin = typing.get_origin(hint)
    args = typing.get_args(hint)
    if origin is typing.Union:  # Optional[X] and friends
        inner = [a for a in args if a is not type(None)]
        return _sample_for(inner[0], field_name)
    if hint is typing.Any:
        return {"answer": 42, "tags": ("a", "b")}
    if hint is str:
        return f"{field_name}-value"
    if hint is bool:
        return True
    if hint is int:
        return 3
    if hint is float:
        return 1.25
    if hint is bytes:
        return b"\x00\x01wire"
    if hint is dict or origin is dict:
        return {"key": 9, (1, 2): "tuple-keyed"}
    if hint is frozenset or origin is frozenset:
        return frozenset({1, 2})
    if hint is set or origin is set:
        return {1, 2}
    if hint is tuple or origin is tuple:
        if field_name == "log":
            return (_SAMPLE_RECORD,)
        if args and args[-1] is Ellipsis:
            return (_sample_for(args[0], field_name),
                    _sample_for(args[0], field_name + "2"))
        if args:
            return tuple(_sample_for(a, f"{field_name}{i}")
                         for i, a in enumerate(args))
        return (1, 2)
    if hint is list or origin is list:
        return [1, 2]
    if dataclasses.is_dataclass(hint):
        return _fabricate(hint, populate_optionals=True)
    raise AssertionError(
        f"no sample rule for field {field_name!r} of type {hint!r}")


_FIELD_OVERRIDES = {
    # Constructor-validated fields need well-formed values.
    "participants": (0, 1),
    "stamps": ((0, 5), (1, 6)),
    "groups": (0, 1),
    # Self-referential / loosely-typed protocol fields.
    "txn": _SAMPLE_TXN,
    "record": _SAMPLE_RECORD,
    "entry": _SAMPLE_RECORD,
    "op": ("prepare", "tag-1"),          # VR's opaque replicated op
    "ops": (("prepare", "tag-1"), ("commit", "tag-2")),
    "op_class": "commutative",           # validated against OpClass.ALL
    "kind": "independent",               # non-generic op_class demands it
    "barriers": ((0, 4), (1, 9)),        # (group, barrier_seq) pairs
}


def _fabricate(cls, populate_optionals: bool):
    """An instance of ``cls`` with every field set (or optionals left
    at their defaults when ``populate_optionals`` is False)."""
    hints = typing.get_type_hints(cls)
    kwargs = {}
    for field in dataclasses.fields(cls):
        has_default = (field.default is not dataclasses.MISSING
                       or field.default_factory is not dataclasses.MISSING)
        if not populate_optionals and has_default:
            continue
        if field.name in _FIELD_OVERRIDES:
            kwargs[field.name] = _FIELD_OVERRIDES[field.name]
            continue
        kwargs[field.name] = _sample_for(hints[field.name], field.name)
    return cls(**kwargs)


def _registry_ids():
    return sorted(registered_message_types())


@pytest.mark.parametrize("wire", WIRES)
@pytest.mark.parametrize("name", _registry_ids())
def test_every_registered_message_roundtrips_fully_populated(name, wire):
    cls = registered_message_types()[name]
    message = _fabricate(cls, populate_optionals=True)
    assert decode_message(encode_message(message, wire)) == message


@pytest.mark.parametrize("wire", WIRES)
@pytest.mark.parametrize("name", _registry_ids())
def test_every_registered_message_roundtrips_with_defaults(name, wire):
    """Optional/None-bearing fields kept at their declared defaults."""
    cls = registered_message_types()[name]
    message = _fabricate(cls, populate_optionals=False)
    assert decode_message(encode_message(message, wire)) == message


def test_registry_covers_the_whole_protocol_surface():
    """The registry is the wire contract: all five protocol families
    must be present, and nothing in it may be unfabricatable."""
    names = set(registered_message_types())
    for required in ("IndependentTxnRequest", "TxnReply", "FindTxn",
                     "ViewChange", "EpochChangeReq", "VRPrepare",
                     "SequencerPing", "LSPrepare", "GRequest",
                     "NTURExecute", "TPrepare", "MultiStamp",
                     "GroupcastHeader", "TxnRecord"):
        assert required in names
    assert len(names) >= 50


# -- hand-built nesting cases ---------------------------------------------

@pytest.mark.parametrize("wire", WIRES)
def test_deep_nesting_roundtrips(wire):
    """HasTxn -> TxnRecord -> IndependentTransaction + MultiStamp, and
    a ViewChange carrying a log tuple of records plus frozensets of
    slots."""
    has = HasTxn(slot=_SAMPLE_SLOT, record=_SAMPLE_RECORD, sender="r0.1")
    assert decode_message(encode_message(has, wire)) == has

    view_change = ViewChange(
        shard=1, new_view=4, epoch_num=2,
        log=(_SAMPLE_RECORD, TxnRecord(txn=None, multistamp=_SAMPLE_STAMP)),
        temp_drops=frozenset({_SAMPLE_SLOT}),
        perm_drops=frozenset({SlotId(0, 1, 2)}),
        un_drops=frozenset(), sender="r1.2")
    decoded = decode_message(encode_message(view_change, wire))
    assert decoded == view_change
    assert isinstance(decoded.log[0].multistamp, MultiStamp)


@pytest.mark.parametrize("wire", WIRES)
def test_none_bearing_optionals_roundtrip(wire):
    """Optional fields explicitly set to None survive the wire."""
    response = PeerTxnResponse(slot=_SAMPLE_SLOT, entry=None,
                               sender="r0.2", dropped=True)
    decoded = decode_message(encode_message(response, wire))
    assert decoded == response
    assert decoded.entry is None

    record = TxnRecord(txn=None, multistamp=_SAMPLE_STAMP)
    assert decode_message(encode_message(record, wire)) == record


@pytest.mark.parametrize("wire", WIRES)
def test_scalars_and_composites_roundtrip_exactly(wire):
    for value in (None, True, False, 0, -17, 3.5, 1e-9, "text", b"bytes",
                  (1, "two", None), [1, [2, [3]]], {"k": (1, 2)},
                  {(0, 1): "tuple key"}, frozenset({1, 2}), {3, 4}):
        decoded = decode_message(encode_message(value, wire))
        assert decoded == value
        assert type(decoded) is type(value)


@pytest.mark.parametrize("wire", WIRES)
def test_packet_roundtrip_preserves_headers_and_ids(wire):
    packet = Packet(src="client-1", dst=None,
                    payload=HasTxn(slot=_SAMPLE_SLOT, record=_SAMPLE_RECORD,
                                   sender="r0.1"),
                    groupcast=GroupcastHeader(groups=(0, 1)),
                    multistamp=_SAMPLE_STAMP, sequenced=True)
    decoded = decode_packet(encode_packet(packet, wire))
    assert decoded.src == packet.src
    assert decoded.dst is None
    assert decoded.payload == packet.payload
    assert decoded.groupcast == packet.groupcast
    assert decoded.multistamp == packet.multistamp
    assert decoded.sequenced is True
    assert decoded.packet_id == packet.packet_id
    assert decoded.trace_id == packet.trace_id


# -- typed failures --------------------------------------------------------

def test_unknown_message_type_raises_codec_error():
    buffer = encode_message(_SAMPLE_TXN_ID).replace(b"TxnId", b"NoSuchMsg")
    with pytest.raises(CodecError, match="unknown wire message type"):
        decode_message(buffer)


@pytest.mark.parametrize("wire", WIRES)
def test_truncated_buffer_raises_codec_error(wire):
    buffer = encode_message(_SAMPLE_RECORD, wire)
    for cut in (0, 1, 3, len(buffer) // 2, len(buffer) - 1):
        with pytest.raises(CodecError):
            decode_message(buffer[:cut])


def test_foreign_bytes_raise_codec_error():
    with pytest.raises(CodecError, match="bad magic"):
        decode_message(b"GET / HTTP/1.1\r\n")
    with pytest.raises(CodecError):
        decode_message(b"EWC1not json at all")
    with pytest.raises(CodecError):
        decode_packet(encode_message("not a packet envelope"))


def test_wrong_field_count_raises_codec_error():
    good = encode_message(_SAMPLE_SLOT)        # ["m","SlotId",[1,2,33]]
    bad = good.replace(b",33]]", b"]]")
    with pytest.raises(CodecError, match="expected 3 fields"):
        decode_message(bad)


def test_unregistered_dataclass_encode_raises_codec_error():
    @dataclasses.dataclass
    class NotOnTheWire:
        x: int

    with pytest.raises(CodecError, match="unregistered"):
        encode_message(NotOnTheWire(x=1))


# -- chain-replicated sequencer messages ----------------------------------

@pytest.mark.parametrize("wire", WIRES)
def test_chain_forward_roundtrips_with_payload_and_without(wire):
    from repro.net.chainseq import ChainForward

    loaded = ChainForward(version=3, epoch=2, stamps=((0, 7), (1, 9)),
                          origin="client-4", payload=_SAMPLE_TXN,
                          groups=(0, 1), trace_id=88)
    assert decode_message(encode_message(loaded, wire)) == loaded

    bare = ChainForward(version=1, epoch=1, stamps=((2, 1),),
                        origin="client-1", payload=None, groups=(2,))
    decoded = decode_message(encode_message(bare, wire))
    assert decoded == bare and decoded.trace_id is None


@pytest.mark.parametrize("wire", WIRES)
def test_chain_repair_control_plane_roundtrips(wire):
    from repro.net.chainseq import (ChainInstall, ChainInstallAck,
                                    ChainState, ChainStateRequest)

    install = ChainInstall(version=4, epoch=2,
                           members=("chain1", "chain2"),
                           counters={0: 17, 1: 3, 5: 0})
    decoded = decode_message(encode_message(install, wire))
    assert decoded == install
    assert decoded.counters == {0: 17, 1: 3, 5: 0}   # int keys survive

    for msg in (ChainStateRequest(nonce=9),
                ChainState(nonce=9, version=4, epoch=2, counters={0: 17}),
                ChainInstallAck(version=4, sender="chain2")):
        assert decode_message(encode_message(msg, wire)) == msg


def test_chain_messages_are_registered():
    names = set(registered_message_types())
    for required in ("ChainForward", "ChainStateRequest", "ChainState",
                     "ChainInstall", "ChainInstallAck"):
        assert required in names


def test_chain_forward_wrong_field_count_raises_codec_error():
    from repro.net.chainseq import ChainForward

    good = encode_message(ChainForward(version=1, epoch=1, stamps=(),
                                       origin="c", payload=None,
                                       groups=(), trace_id=5))
    bad = good.replace(b",5]]", b"]]")
    with pytest.raises(CodecError, match="expected 7 fields"):
        decode_message(bad)


def test_chain_install_malformed_counters_raises_codec_error():
    from repro.net.chainseq import ChainInstall

    good = encode_message(ChainInstall(version=1, epoch=1,
                                       members=("a",), counters={0: 1}))
    # Break the dict tag's [k, v] pair shape.
    bad = good.replace(b'["d",[0,1]]', b'["d",[0,1,2]]')
    assert bad != good
    with pytest.raises(CodecError, match="malformed dict entry"):
        decode_message(bad)
