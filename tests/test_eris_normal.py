"""Integration tests: Eris normal-case protocol (§6.2) and sync (§6.6)."""

import pytest

from repro.baselines.common import WorkloadOp
from repro.core.replica import ErisReplica
from repro.harness.checkers import run_all_checks
from repro.store.kv import MISSING

from conftest import drive, make_ycsb_cluster, submit_and_wait


def rmw_op(keys, partitioner):
    return WorkloadOp(proc="ycsb_rmw", args={"keys": tuple(keys)},
                      participants=partitioner.participants_for(keys),
                      read_keys=frozenset(keys), write_keys=frozenset(keys))


def read_op(key, partitioner):
    return WorkloadOp(proc="ycsb_read", args={"key": key},
                      participants=(partitioner.shard_of(key),),
                      read_keys=frozenset([key]))


def test_single_shard_txn_commits_in_one_round_trip():
    cluster = make_ycsb_cluster()
    client = cluster.make_client()
    op = read_op(4, cluster.partitioner)
    result = submit_and_wait(cluster, client, op)
    assert result.committed
    assert result.retries == 0
    # One round trip: client->sequencer->replicas->client, well under
    # a millisecond at 10us hops.
    assert result.latency < 200e-6


def test_no_server_to_server_messages_in_normal_case():
    cluster = make_ycsb_cluster()
    client = cluster.make_client()
    # Replica-to-replica traffic in a healthy run is only the periodic
    # sync protocol; peer/FC recovery should never fire.
    result = submit_and_wait(cluster, client,
                             rmw_op([1, 2], cluster.partitioner))
    assert result.committed
    for replicas in cluster.replicas.values():
        for replica in replicas:
            assert replica.drops_escalated_to_fc == 0
            assert replica.drops_recovered_from_peer == 0


def test_multi_shard_txn_executes_on_both_shards():
    cluster = make_ycsb_cluster(n_shards=2)
    client = cluster.make_client()
    keys = [0, 1]  # key i lives on shard i % 2
    op = rmw_op(keys, cluster.partitioner)
    assert op.participants == (0, 1)
    result = submit_and_wait(cluster, client, op)
    assert result.committed
    assert cluster.authoritative_store(0).get(0) == 1
    assert cluster.authoritative_store(1).get(1) == 1


def test_only_dl_returns_results():
    cluster = make_ycsb_cluster()
    client = cluster.make_client()
    result = submit_and_wait(cluster, client, read_op(2, cluster.partitioner))
    shard = cluster.partitioner.shard_of(2)
    assert result.result[shard] == {2: 0}


def test_many_txns_keep_consistent_cross_shard_order():
    cluster = make_ycsb_cluster(n_shards=3)
    clients = [cluster.make_client() for _ in range(5)]
    done = []
    for i in range(60):
        keys = [i % 7, 7 + (i % 5)]
        clients[i % 5].submit(rmw_op(keys, cluster.partitioner), done.append)
    drive(cluster, 0.1)
    assert len(done) == 60
    assert all(r.committed for r in done)
    run_all_checks(cluster)


def test_sync_makes_replicas_execute():
    cluster = make_ycsb_cluster()
    client = cluster.make_client()
    submit_and_wait(cluster, client,
                    WorkloadOp(proc="ycsb_write",
                               args={"key": 3, "value": 77},
                               participants=(cluster.partitioner.shard_of(3),),
                               write_keys=frozenset([3])))
    drive(cluster, 0.05)  # several sync intervals
    shard = cluster.partitioner.shard_of(3)
    for replica in cluster.replicas[shard]:
        assert replica.store.get(3) == 77


def test_at_most_once_despite_client_retries():
    cluster = make_ycsb_cluster()
    # Force the client's first attempt to be invisible to the replicas
    # by dropping all groupcast packets briefly.
    cluster.network.drop_filter = \
        lambda pkt: pkt.multistamp is not None and cluster.loop.now < 1e-3
    client = cluster.make_client()
    op = rmw_op([5], cluster.partitioner)
    result = submit_and_wait(cluster, client, op)
    assert result.committed
    assert result.retries >= 1
    shard = cluster.partitioner.shard_of(5)
    assert cluster.authoritative_store(shard).get(5) == 1  # exactly once


def test_deterministic_abort_reported_uncommitted():
    cluster = make_ycsb_cluster()
    from repro.store.procedures import TxnContext

    def aborting(ctx: TxnContext, args):
        ctx.abort("always fails")

    cluster.registry.register("aborting", aborting)
    client = cluster.make_client()
    op = WorkloadOp(proc="aborting", args={}, participants=(0,))
    result = submit_and_wait(cluster, client, op)
    assert not result.committed


def test_recon_read_returns_current_value():
    cluster = make_ycsb_cluster()
    client = cluster.make_client()
    shard = cluster.partitioner.shard_of(9)
    dl = next(r for r in cluster.replicas[shard] if r.is_dl)
    got = []
    client.node.recon(dl.address, 9, lambda k, v: got.append((k, v)))
    drive(cluster, 0.01)
    assert got == [(9, 0)]


def test_txn_replies_carry_matching_view_and_epoch():
    cluster = make_ycsb_cluster()
    client = cluster.make_client()
    result = submit_and_wait(cluster, client, read_op(1, cluster.partitioner))
    assert result.committed
    for replicas in cluster.replicas.values():
        for replica in replicas:
            assert replica.view_num == 0
            assert replica.epoch_num == 1
            assert replica.status == "normal"


def test_logs_identical_across_replicas_after_quiesce():
    cluster = make_ycsb_cluster(n_shards=2)
    client = cluster.make_client()
    for i in range(20):
        submit_and_wait(cluster, client, rmw_op([i, i + 1],
                                                cluster.partitioner))
    drive(cluster, 0.05)
    run_all_checks(cluster)
    for replicas in cluster.replicas.values():
        lens = {len(r.log) for r in replicas}
        assert len(lens) == 1
