"""Integration tests: Eris dropped-message recovery (§6.3).

Uses the network's deterministic drop filter to create precise loss
scenarios: one replica misses a message (peer recovery), a whole shard
misses it (FC recovery), every participant misses it (FC permanent
drop with cross-shard atomicity)."""

from repro.baselines.common import WorkloadOp
from repro.core.transaction import SlotId
from repro.harness.checkers import run_all_checks
from repro.store.kv import MISSING

from conftest import drive, make_ycsb_cluster, submit_and_wait


def rmw_op(keys, partitioner):
    return WorkloadOp(proc="ycsb_rmw", args={"keys": tuple(keys)},
                      participants=partitioner.participants_for(keys),
                      read_keys=frozenset(keys), write_keys=frozenset(keys))


def drop_to(cluster, targets, when=lambda now: True):
    """Drop sequenced packets addressed to the given replicas."""
    addresses = {t.address if hasattr(t, "address") else t for t in targets}
    cluster.network.drop_filter = lambda pkt: (
        pkt.multistamp is not None and pkt.dst in addresses
        and when(cluster.loop.now))


def test_single_replica_recovers_from_peers():
    cluster = make_ycsb_cluster()
    victim = cluster.replicas[0][1]  # a non-DL replica of shard 0
    drop_to(cluster, [victim], when=lambda now: now < 0.5e-3)
    client = cluster.make_client()
    # First txn to shard 0 is lost at the victim; a second reveals the
    # gap and triggers recovery.
    submit_and_wait(cluster, client, rmw_op([0], cluster.partitioner))
    submit_and_wait(cluster, client, rmw_op([0], cluster.partitioner))
    drive(cluster, 0.02)
    assert victim.drops_recovered_from_peer >= 1
    assert victim.drops_escalated_to_fc == 0
    assert len(victim.log) == len(cluster.replicas[0][0].log)
    run_all_checks(cluster)


def test_whole_shard_miss_recovered_via_fc():
    cluster = make_ycsb_cluster(n_shards=2)
    part = cluster.partitioner
    # Drop the first multi-shard txn at every replica of shard 1 only;
    # shard 0 logs it, so the FC must find it there (via HAS-TXN).
    shard1 = cluster.replicas[1]
    first = {"dropped": False}

    def drop_first(pkt):
        if pkt.multistamp is None or pkt.dst not in {r.address
                                                     for r in shard1}:
            return False
        if pkt.multistamp.seq_for(1) == 1:
            first["dropped"] = True
            return True
        return False

    cluster.network.drop_filter = drop_first
    client = cluster.make_client()
    done = []
    client.submit(rmw_op([0, 1], part), done.append)   # seq 1 on shard 1
    drive(cluster, 1e-3)
    cluster.network.drop_filter = None
    client.submit(rmw_op([3], part), done.append)      # reveals the gap
    drive(cluster, 0.1)
    assert first["dropped"]
    assert len(done) == 2 and all(r.committed for r in done)
    assert cluster.fc.finds_resolved >= 1
    # Shard 1 executed the recovered transaction.
    assert cluster.authoritative_store(1).get(1) == 1
    run_all_checks(cluster)


def test_fully_lost_txn_permanently_dropped_atomically():
    cluster = make_ycsb_cluster(n_shards=2)
    part = cluster.partitioner
    all_replicas = {r.address for reps in cluster.replicas.values()
                    for r in reps}
    window = {"active": True}

    def drop_all(pkt):
        return (window["active"] and pkt.multistamp is not None
                and pkt.dst in all_replicas)

    cluster.network.drop_filter = drop_all
    client = cluster.make_client()
    done = []
    # This multi-shard txn vanishes entirely (sequenced, then dropped).
    client.node.max_retries = 0   # do not let the client resurrect it
    client.submit(rmw_op([0, 1], part), done.append)
    drive(cluster, 1e-3)
    window["active"] = False
    # Subsequent txns reveal gaps on both shards; nobody has the
    # message, so the FC gathers drop promises and NO-OPs it.
    follow = cluster.make_client()
    submit_and_wait(cluster, follow, rmw_op([2], part))
    submit_and_wait(cluster, follow, rmw_op([3], part))
    drive(cluster, 0.2)
    assert cluster.fc.drops_decided >= 1
    # The lost transaction executed nowhere: atomic all-or-nothing.
    assert cluster.authoritative_store(0).get(0) == 0
    assert cluster.authoritative_store(1).get(1) == 0
    # Both shards hold a NO-OP in the dropped slot.
    for shard in (0, 1):
        dl = next(r for r in cluster.replicas[shard] if r.is_dl)
        entry = dl.log.find_slot(SlotId(shard, 1, 1))
        assert entry is not None and entry.is_noop
    run_all_checks(cluster)


def test_temp_drop_blocks_until_fc_decision():
    """A replica that promised a TEMP-DROPPED-TXN must not process the
    transaction even if it arrives later (§6.3 step 3)."""
    cluster = make_ycsb_cluster(n_shards=1)
    shard0 = cluster.replicas[0]
    dl = next(r for r in shard0 if r.is_dl)
    slot = SlotId(0, 1, 99)
    from repro.core.messages import TxnRequestMsg
    dl.on_TxnRequestMsg("fc", TxnRequestMsg(slot=slot), None)
    assert slot in dl.temp_drops
    # A transaction stamped with that slot arrives: it must be held.
    from repro.core.messages import IndependentTxnRequest
    from repro.core.transaction import IndependentTransaction, TxnId
    from repro.net.message import MultiStamp, Packet
    txn = IndependentTransaction(txn_id=TxnId("c", 1), proc="ycsb_rmw",
                                 args={"keys": (0,)}, participants=(0,))
    stamp = MultiStamp(epoch=1, stamps=((0, 99),))
    # Pretend sequence numbers 1..98 never existed by fast-forwarding.
    dl.channel.fast_forward(99)
    dl._on_sequenced(Packet(src="c", dst=dl.address,
                            payload=IndependentTxnRequest(txn),
                            multistamp=stamp))
    assert len(dl.log) == 0          # blocked, not processed
    # FC decides: dropped. The replica NO-OPs the slot and moves on.
    from repro.core.messages import TxnDropped
    dl.on_TxnDropped("fc", TxnDropped(slot=slot), None)
    assert len(dl.log) == 1
    assert dl.log.get(1).is_noop


def test_txn_found_unblocks_temp_drop():
    cluster = make_ycsb_cluster(n_shards=1)
    dl = next(r for r in cluster.replicas[0] if r.is_dl)
    slot = SlotId(0, 1, 1)
    from repro.core.messages import (IndependentTxnRequest, TxnFound,
                                     TxnRecord, TxnRequestMsg)
    from repro.core.transaction import IndependentTransaction, TxnId
    from repro.net.message import MultiStamp, Packet
    dl.on_TxnRequestMsg("fc", TxnRequestMsg(slot=slot), None)
    txn = IndependentTransaction(txn_id=TxnId("c", 1), proc="ycsb_write",
                                 args={"key": 0, "value": 5},
                                 participants=(0,),
                                 write_keys=frozenset([0]))
    record = TxnRecord(txn=txn, multistamp=MultiStamp(1, ((0, 1),)))
    dl.on_TxnFound("fc", TxnFound(slot=slot, record=record), None)
    assert len(dl.log) == 1
    assert dl.log.get(1).kind == "txn"
    assert dl.store.get(0) == 5


def test_high_random_loss_preserves_invariants():
    cluster = make_ycsb_cluster(n_shards=2, drop_rate=0.03)
    clients = [cluster.make_client() for _ in range(10)]
    done = []
    for i in range(80):
        keys = [i % 9, 9 + (i % 4)]
        clients[i % 10].submit(rmw_op(keys, cluster.partitioner),
                               done.append)
    drive(cluster, 0.3)
    cluster.set_drop_rate(0.0)
    drive(cluster, 0.2)
    committed = [r for r in done if r.committed]
    assert len(committed) >= 70   # most should eventually commit
    run_all_checks(cluster)
