"""Unit tests for Viewstamped Replication (the baselines' substrate)."""

from repro.net.network import NetConfig, Network
from repro.replication.log import ReplicatedLog
from repro.replication.vr import VRConfig, VRReplica
from repro.sim.event_loop import EventLoop


class CountingReplica(VRReplica):
    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self.applied = []

    def execute_op(self, op):
        self.applied.append(op)
        return ("applied", op)


def build_group(n=3, drop_rate=0.0):
    loop = EventLoop()
    net = Network(loop, NetConfig(jitter=0.0, drop_rate=drop_rate))
    group = [f"r{i}" for i in range(n)]
    config = VRConfig(heartbeat_interval=5e-3, view_change_timeout=30e-3)
    replicas = [CountingReplica(a, net, group, i, config)
                for i, a in enumerate(group)]
    return loop, net, replicas


def test_leader_is_view_mod_n():
    loop, net, replicas = build_group()
    assert replicas[0].is_leader
    assert not replicas[1].is_leader
    assert replicas[0].leader_address == "r0"


def test_replicate_commits_and_executes_everywhere():
    loop, net, replicas = build_group()
    results = []
    replicas[0].replicate("op1", results.append)
    loop.run(until=50e-3)
    assert results == [("applied", "op1")]
    assert all(r.applied == ["op1"] for r in replicas)


def test_ops_execute_in_log_order_on_all_replicas():
    loop, net, replicas = build_group()
    for i in range(10):
        replicas[0].replicate(f"op{i}")
    loop.run(until=100e-3)
    expected = [f"op{i}" for i in range(10)]
    for replica in replicas:
        assert replica.applied == expected


def test_callback_fires_once_after_majority():
    loop, net, replicas = build_group()
    fired = []
    replicas[0].replicate("x", lambda result: fired.append(loop.now))
    loop.run(until=50e-3)
    assert len(fired) == 1
    # One round trip leader->backup->leader at 10us per hop.
    assert fired[0] >= 20e-6


def test_view_change_elects_next_leader():
    loop, net, replicas = build_group()
    replicas[0].replicate("before-crash")
    loop.run(until=20e-3)
    replicas[0].crash()
    loop.run(until=0.3)
    live = [r for r in replicas if not r.crashed]
    leaders = [r for r in live if r.is_leader]
    assert len(leaders) == 1
    assert leaders[0].address == "r1"
    assert all(r.vr_status == "normal" for r in live)


def test_committed_ops_survive_view_change():
    loop, net, replicas = build_group()
    results = []
    replicas[0].replicate("durable", results.append)
    loop.run(until=20e-3)
    assert results  # committed in view 0
    replicas[0].crash()
    loop.run(until=0.3)
    new_leader = next(r for r in replicas if not r.crashed and r.is_leader)
    assert "durable" in [e.op for e in new_leader.vr_log.entries()]
    # The new leader can keep replicating.
    new_leader.replicate("after-change")
    loop.run(until=0.4)
    live = [r for r in replicas if not r.crashed]
    for replica in live:
        assert replica.applied[-1] == "after-change"


def test_f_zero_group_commits_immediately():
    loop = EventLoop()
    net = Network(loop, NetConfig(jitter=0.0))
    replica = CountingReplica("solo", net, ["solo"], 0)
    done = []
    replica.replicate("only", done.append)
    loop.run(until=1e-3)
    assert done == [("applied", "only")]


def test_replicated_log_structure():
    log = ReplicatedLog()
    e1 = log.append(0, "a")
    e2 = log.append(0, "b")
    assert (e1.op_num, e2.op_num) == (1, 2)
    assert log.get(1).op == "a"
    assert log.get(3) is None
    assert log.last_op_num == 2
    log.truncate_to(1)
    assert log.last_op_num == 1


def test_backup_ignores_stale_view_messages():
    loop, net, replicas = build_group()
    replicas[0].replicate("op")
    loop.run(until=20e-3)
    # Force replica 1 into a later view state, then replay an old prepare.
    from repro.replication.vr import VRPrepare
    replicas[1].view = 5
    before = len(replicas[1].vr_log)
    replicas[1].on_VRPrepare("r0", VRPrepare(view=0, op_num=99, op="stale",
                                             commit_num=0), None)
    assert len(replicas[1].vr_log) == before
