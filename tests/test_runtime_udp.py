"""The asyncio-UDP runtime backend runs the unmodified protocol stack.

These tests exercise real sockets: every message is serialized by the
wire codec, crosses the kernel's loopback path, and is decoded on the
far side. The protocol classes (ErisClient, ErisReplica, sequencer,
controller, FC) are exactly the ones the simulator runs — only the
runtime differs, which is the point of the abstraction.
"""

from __future__ import annotations

import socket

import pytest

from repro.errors import NetworkError
from repro.net.endpoint import Node
from repro.runtime.asyncio_udp import AsyncioUdpRuntime
from repro.runtime.codec import MAX_DATAGRAM_FRAMES, CodecError


# -- runtime primitives over real sockets ---------------------------------

class Echo(Node):
    """Replies to any payload with ("echo", payload)."""

    def __init__(self, address, runtime):
        super().__init__(address, runtime)
        self.seen = []

    def handle(self, src, message, packet):
        self.seen.append(message)
        if not (isinstance(message, tuple) and message
                and message[0] == "echo"):
            self.send(src, ("echo", message))


@pytest.fixture
def runtime():
    rt = AsyncioUdpRuntime(seed=3)
    yield rt
    rt.stop()


def test_unicast_roundtrip_over_loopback(runtime):
    a = Echo("a", runtime)
    b = Echo("b", runtime)
    runtime.start()
    a.send("b", ("ping", 1))
    assert runtime.run_until(lambda: ("echo", ("ping", 1)) in a.seen,
                             timeout=5.0)
    assert b.seen == [("ping", 1)]
    assert runtime.packets_delivered >= 2


def test_plain_groupcast_fans_out(runtime):
    members = [Echo(f"m{i}", runtime) for i in range(3)]
    sender = Echo("sender", runtime)
    runtime.groups.define(0, [m.address for m in members])
    runtime.start()
    sender.send_groupcast((0,), ("announce",), sequenced=False)
    assert runtime.run_until(
        lambda: all(("announce",) in m.seen for m in members), timeout=5.0)


def test_sequenced_groupcast_without_route_is_dropped(runtime):
    member = Echo("m0", runtime)
    sender = Echo("sender", runtime)
    runtime.groups.define(0, [member.address])
    runtime.start()
    sender.send_groupcast((0,), ("stamped",), sequenced=True)
    runtime.run_for(0.05)
    assert member.seen == []
    assert runtime.packets_dropped >= 1


def test_timers_fire_and_restart(runtime):
    fired = []
    timer = runtime.timer(0.01, lambda: fired.append("one-shot"))
    periodic = runtime.periodic(0.01, lambda: fired.append("tick"))
    timer.start()
    timer.restart()          # push the deadline; still exactly one fire
    periodic.start()
    assert runtime.run_until(
        lambda: "one-shot" in fired and fired.count("tick") >= 3,
        timeout=5.0)
    periodic.stop()
    assert fired.count("one-shot") == 1
    assert not periodic.active


def test_runtime_owns_fresh_tags_and_rng(runtime):
    node = Echo("n", runtime)
    assert node.fresh_tag("n") == "n:1"
    assert node.fresh_tag("n") == "n:2"
    # A second runtime restarts the counter — per-cluster determinism.
    other = AsyncioUdpRuntime(seed=3)
    try:
        assert other.fresh_tag("n") == "n:1"
        assert (other.rng_stream("x").random()
                == runtime.rng_stream("x").random())
    finally:
        other.stop()


def test_duplicate_registration_rejected(runtime):
    Echo("dup", runtime)
    with pytest.raises(NetworkError):
        Echo("dup", runtime)


# -- shutdown socket ownership (double-close regression) ------------------

def test_stop_closes_each_transport_owned_socket_exactly_once(monkeypatch):
    """Regression: stop() used to hard-close every registered socket and
    then close the asyncio transports, whose own close callbacks close
    the same sockets again. Releasing an fd while a transport still
    holds it invites fd-reuse corruption (the callback can close a
    descriptor that now belongs to someone else). A transport-owned
    socket must therefore be closed exactly once — by its transport."""
    closes: dict[int, int] = {}
    original_close = socket.socket.close

    def counting_close(self):
        closes[id(self)] = closes.get(id(self), 0) + 1
        original_close(self)

    monkeypatch.setattr(socket.socket, "close", counting_close)
    rt = AsyncioUdpRuntime(seed=1)
    Echo("a", rt)
    Echo("b", rt)
    rt.start()
    owned = [id(sock) for sock in rt._socks.values()]
    assert len(rt._transports) == 2
    rt.stop()
    for sock_id in owned:
        assert closes.get(sock_id, 0) == 1


def test_stop_before_start_closes_orphan_sockets():
    """Sockets bound in register() but never attached to a transport
    have no owner to close them: stop() must close them directly (and
    leave none with a live fd)."""
    rt = AsyncioUdpRuntime(seed=1)
    Echo("a", rt)
    Echo("b", rt)
    socks = list(rt._socks.values())
    assert all(sock.fileno() != -1 for sock in socks)
    rt.stop()
    assert all(sock.fileno() == -1 for sock in socks)
    rt.stop()                     # idempotent


# -- fan-out accounting (counter-asymmetry regression) --------------------

def test_fanout_copies_counted_separately_from_sends(runtime):
    """Regression: the UDP backend used to fold fan-out copies into
    nothing at all — a 3-member groupcast looked like one send and the
    per-member copies were invisible. Both backends now account one
    protocol-level send plus len(members) fanout_copies (the sim-fabric
    twin of this test lives in test_network.py)."""
    members = [Echo(f"m{i}", runtime) for i in range(3)]
    sender = Echo("sender", runtime)
    runtime.groups.define(0, [m.address for m in members])
    runtime.start()
    sent_before = runtime.packets_sent
    sender.send_groupcast((0,), ("fan",), sequenced=False)
    assert runtime.packets_sent == sent_before + 1
    assert runtime.fanout_copies == 3
    assert runtime.run_until(
        lambda: all(("fan",) in m.seen for m in members), timeout=5.0)
    assert runtime.fanout_copies == 3   # echoes are unicast replies


# -- wire / batching knobs -------------------------------------------------

def test_runtime_rejects_bad_wire_and_batch_knobs():
    with pytest.raises(CodecError):
        AsyncioUdpRuntime(wire="ewc9")
    for frames in (0, -1, MAX_DATAGRAM_FRAMES + 1):
        with pytest.raises(NetworkError):
            AsyncioUdpRuntime(batch_frames=frames)


def test_batched_frames_share_datagrams():
    """With batch_frames > 1 a same-iteration burst to one destination
    leaves as a single EWCB datagram; the receiver unpacks every frame."""
    class Sink(Node):
        def __init__(self, address, runtime):
            super().__init__(address, runtime)
            self.seen = []

        def handle(self, src, message, packet):
            self.seen.append(message)

    rt = AsyncioUdpRuntime(seed=5, wire="ewc2", batch_frames=8)
    try:
        a = Sink("a", rt)
        b = Sink("b", rt)
        rt.start()

        def burst():
            for i in range(6):
                a.send("b", ("burst", i))

        rt.aloop.call_soon(burst)
        assert rt.run_until(
            lambda: len(b.seen) == 6, timeout=5.0)
        assert [m for m in b.seen] == [("burst", i) for i in range(6)]
        assert rt.frames_sent == 6
        # One flush for the burst: 6 frames, 1 datagram (the exact
        # count is scheduling-dependent only above batch_frames).
        assert rt.datagrams_sent == 1
    finally:
        rt.stop()


# -- the full Eris stack over UDP -----------------------------------------

def test_eris_end_to_end_over_udp_loopback():
    """2 shards x 3 replicas + sequencer + controller + FC on real
    loopback sockets; a short closed-loop YCSB run must commit and the
    §6.7 invariant checkers must pass. Mirrors the CI smoke job at
    test-suite scale."""
    from repro.harness.udp_smoke import run_udp_smoke

    result = run_udp_smoke(n_shards=2, n_replicas=3, n_clients=3,
                           min_commits=25, timeout=30.0,
                           workload="mrmw", distributed_fraction=0.5)
    assert result.committed >= 25
    assert result.checks_passed
    assert result.packets_delivered > 0


def test_eris_over_udp_with_ewc2_and_batching():
    """Same smoke with the whole fast-wire stack on: EWC2 frames, EWCB
    datagram packing, sequencer stamp batching, and reply coalescing.
    The §6.7 checkers must still pass, and the packing must actually
    fire (strictly fewer datagrams than frames)."""
    from repro.harness.udp_smoke import run_udp_smoke

    result = run_udp_smoke(n_shards=2, n_replicas=3, n_clients=3,
                           min_commits=25, timeout=30.0,
                           workload="mrmw", distributed_fraction=0.5,
                           wire="ewc2", batch=8)
    assert result.committed >= 25
    assert result.checks_passed
    assert result.frames_sent > result.datagrams_sent
