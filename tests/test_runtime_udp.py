"""The asyncio-UDP runtime backend runs the unmodified protocol stack.

These tests exercise real sockets: every message is serialized by the
wire codec, crosses the kernel's loopback path, and is decoded on the
far side. The protocol classes (ErisClient, ErisReplica, sequencer,
controller, FC) are exactly the ones the simulator runs — only the
runtime differs, which is the point of the abstraction.
"""

from __future__ import annotations

import pytest

from repro.errors import NetworkError
from repro.net.endpoint import Node
from repro.runtime.asyncio_udp import AsyncioUdpRuntime


# -- runtime primitives over real sockets ---------------------------------

class Echo(Node):
    """Replies to any payload with ("echo", payload)."""

    def __init__(self, address, runtime):
        super().__init__(address, runtime)
        self.seen = []

    def handle(self, src, message, packet):
        self.seen.append(message)
        if not (isinstance(message, tuple) and message
                and message[0] == "echo"):
            self.send(src, ("echo", message))


@pytest.fixture
def runtime():
    rt = AsyncioUdpRuntime(seed=3)
    yield rt
    rt.stop()


def test_unicast_roundtrip_over_loopback(runtime):
    a = Echo("a", runtime)
    b = Echo("b", runtime)
    runtime.start()
    a.send("b", ("ping", 1))
    assert runtime.run_until(lambda: ("echo", ("ping", 1)) in a.seen,
                             timeout=5.0)
    assert b.seen == [("ping", 1)]
    assert runtime.packets_delivered >= 2


def test_plain_groupcast_fans_out(runtime):
    members = [Echo(f"m{i}", runtime) for i in range(3)]
    sender = Echo("sender", runtime)
    runtime.groups.define(0, [m.address for m in members])
    runtime.start()
    sender.send_groupcast((0,), ("announce",), sequenced=False)
    assert runtime.run_until(
        lambda: all(("announce",) in m.seen for m in members), timeout=5.0)


def test_sequenced_groupcast_without_route_is_dropped(runtime):
    member = Echo("m0", runtime)
    sender = Echo("sender", runtime)
    runtime.groups.define(0, [member.address])
    runtime.start()
    sender.send_groupcast((0,), ("stamped",), sequenced=True)
    runtime.run_for(0.05)
    assert member.seen == []
    assert runtime.packets_dropped >= 1


def test_timers_fire_and_restart(runtime):
    fired = []
    timer = runtime.timer(0.01, lambda: fired.append("one-shot"))
    periodic = runtime.periodic(0.01, lambda: fired.append("tick"))
    timer.start()
    timer.restart()          # push the deadline; still exactly one fire
    periodic.start()
    assert runtime.run_until(
        lambda: "one-shot" in fired and fired.count("tick") >= 3,
        timeout=5.0)
    periodic.stop()
    assert fired.count("one-shot") == 1
    assert not periodic.active


def test_runtime_owns_fresh_tags_and_rng(runtime):
    node = Echo("n", runtime)
    assert node.fresh_tag("n") == "n:1"
    assert node.fresh_tag("n") == "n:2"
    # A second runtime restarts the counter — per-cluster determinism.
    other = AsyncioUdpRuntime(seed=3)
    try:
        assert other.fresh_tag("n") == "n:1"
        assert (other.rng_stream("x").random()
                == runtime.rng_stream("x").random())
    finally:
        other.stop()


def test_duplicate_registration_rejected(runtime):
    Echo("dup", runtime)
    with pytest.raises(NetworkError):
        Echo("dup", runtime)


# -- the full Eris stack over UDP -----------------------------------------

def test_eris_end_to_end_over_udp_loopback():
    """2 shards x 3 replicas + sequencer + controller + FC on real
    loopback sockets; a short closed-loop YCSB run must commit and the
    §6.7 invariant checkers must pass. Mirrors the CI smoke job at
    test-suite scale."""
    from repro.harness.udp_smoke import run_udp_smoke

    result = run_udp_smoke(n_shards=2, n_replicas=3, n_clients=3,
                           min_commits=25, timeout=30.0,
                           workload="mrmw", distributed_fraction=0.5)
    assert result.committed >= 25
    assert result.checks_passed
    assert result.packets_delivered > 0
