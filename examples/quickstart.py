#!/usr/bin/env python
"""Quickstart: build an Eris deployment and commit transactions.

Builds a 3-shard, 3-replicas-per-shard Eris cluster on the simulated
network (multi-sequencing middlebox, SDN controller, failure
coordinator), registers a tiny stored procedure, and commits both
single-shard and multi-shard independent transactions — each in a
single round trip from the client, with no server-to-server
coordination.

Run:  python examples/quickstart.py
"""

from repro.baselines.common import WorkloadOp
from repro.harness import ClusterConfig, build_cluster
from repro.harness.checkers import run_all_checks
from repro.store import ProcedureRegistry
from repro.workloads import Partitioner


def transfer_points(ctx, args):
    """An independent transaction: unconditionally credit every listed
    player (each shard updates only the keys it owns)."""
    credited = {}
    for player, points in args["credits"].items():
        if ctx.owns(player):
            balance = ctx.get(player)
            balance = 0 if not isinstance(balance, int) else balance
            ctx.put(player, balance + points)
            credited[player] = balance + points
    return credited


def main() -> None:
    registry = ProcedureRegistry()
    registry.register("transfer_points", transfer_points)

    partitioner = Partitioner(n_shards=3)
    cluster = build_cluster(
        ClusterConfig(system="eris", n_shards=3, n_replicas=3),
        registry, partitioner)
    client = cluster.make_client()

    outcomes = []
    players = ["ada", "grace", "barbara", "katherine"]
    for round_number in range(5):
        credits = {player: 10 * (round_number + 1) for player in players}
        op = WorkloadOp(
            proc="transfer_points",
            args={"credits": credits},
            participants=partitioner.participants_for(players),
            write_keys=frozenset(players),
        )
        client.submit(op, outcomes.append)

    # Drive the simulated world until everything settles.
    cluster.loop.run(until=0.1)

    print("committed transactions:")
    for outcome in outcomes:
        print(f"  committed={outcome.committed} "
              f"latency={outcome.latency * 1e6:.1f} us "
              f"result={outcome.result}")

    print("\nfinal balances (read from each shard's Designated Learner):")
    for player in players:
        shard = partitioner.shard_of(player)
        value = cluster.authoritative_store(shard).get(player)
        print(f"  {player:10s} shard={shard} balance={value}")

    run_all_checks(cluster)
    print("\nall §6.7 invariants verified: serializable, atomic, "
          "replicas consistent")


if __name__ == "__main__":
    main()
