#!/usr/bin/env python
"""General transactions (§7): conditional cross-shard bank transfers.

The paper's motivating example for general transactions is "move funds
from one account to another only if there are sufficient funds" — the
conditional update depends on data stored on another shard, so it
cannot be an independent transaction. This example:

1. loads accounts across 4 shards,
2. issues reconnaissance reads to discover balances (§7.1),
3. runs transfers as preliminary + conclusory independent transactions
   (locks acquired atomically in the linearized order — deadlock-free),
4. shows an insufficient-funds abort, and
5. fires many concurrent conflicting transfers and verifies that the
   total amount of money is conserved (serializability in action).

Run:  python examples/bank_transfers.py
"""

from repro.core.general import GeneralTransactionManager
from repro.harness import ClusterConfig, build_cluster
from repro.harness.checkers import run_all_checks
from repro.store import ProcedureRegistry
from repro.workloads import Partitioner

N_SHARDS = 4
ACCOUNTS = [f"acct-{i}" for i in range(16)]
OPENING_BALANCE = 100


def load_accounts(stores, partitioner):
    for account in ACCOUNTS:
        shard = partitioner.shard_of(account)
        for store in stores[shard]:
            store.put(account, OPENING_BALANCE)


def make_transfer(manager, partitioner, src, dst, amount, results):
    """One conditional transfer as a §7 general transaction."""
    keys = {src, dst}

    def compute(values):
        if values[src] < amount:
            return None  # abort: insufficient funds
        return {src: values[src] - amount, dst: values[dst] + amount}

    manager.execute(
        read_keys=keys, write_keys=keys,
        participants=partitioner.participants_for(keys),
        compute=compute,
        callback=lambda outcome: results.append((src, dst, amount,
                                                 outcome.committed)))


def main() -> None:
    registry = ProcedureRegistry()  # general txns need no procedures
    partitioner = Partitioner(N_SHARDS)
    cluster = build_cluster(
        ClusterConfig(system="eris", n_shards=N_SHARDS),
        registry, partitioner, loader=lambda s, p: load_accounts(s, p))

    client = cluster.make_client()
    manager = GeneralTransactionManager(client.node)

    # Reconnaissance: non-transactional balance reads from the DLs.
    dl_of = {shard: next(r for r in cluster.replicas[shard] if r.is_dl)
             for shard in range(N_SHARDS)}
    observed = {}
    manager.reconnaissance(
        {dl_of[partitioner.shard_of(a)].address: [a]
         for a in ACCOUNTS[:4]},
        observed.update)
    cluster.loop.run(until=0.01)
    print("reconnaissance reads:", observed)

    results = []
    # A valid transfer and an insufficient-funds transfer.
    make_transfer(manager, partitioner, "acct-0", "acct-1", 30, results)
    make_transfer(manager, partitioner, "acct-2", "acct-3", 10_000, results)
    cluster.loop.run(until=0.05)
    for src, dst, amount, committed in results:
        verdict = "committed" if committed else "aborted"
        print(f"  transfer {src} -> {dst} ({amount}): {verdict}")

    # A storm of concurrent conflicting transfers between hot accounts.
    print("\nrunning 40 concurrent conflicting transfers ...")
    storm = []
    managers = []
    for i in range(40):
        c = cluster.make_client()
        m = GeneralTransactionManager(c.node)
        managers.append(m)
        src = ACCOUNTS[i % 4]
        dst = ACCOUNTS[(i + 1) % 4]
        make_transfer(m, partitioner, src, dst, 5, storm)
    cluster.loop.run(until=0.5)

    committed = sum(1 for *_, ok in storm if ok)
    print(f"  {committed}/{len(storm)} transfers committed "
          f"(aborts are insufficient-funds, never deadlock)")

    total = sum(cluster.authoritative_store(partitioner.shard_of(a)).get(a)
                for a in ACCOUNTS)
    print(f"  total money: {total} "
          f"(expected {OPENING_BALANCE * len(ACCOUNTS)} minus nothing)")
    assert total == OPENING_BALANCE * len(ACCOUNTS), "money leaked!"

    run_all_checks(cluster)
    print("conservation + serializability verified")


if __name__ == "__main__":
    main()
