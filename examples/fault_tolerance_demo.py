#!/usr/bin/env python
"""Fault tolerance walkthrough: drops, DL failure, sequencer failover.

Runs a continuous YCSB+T load against Eris while injecting, in order:

1. 2% random packet loss — replicas detect gaps via multi-stamp
   sequence numbers and recover from same-shard peers (§6.3);
2. a Designated Learner crash — the shard elects a new DL and replays
   committed state (§6.4);
3. a sequencer crash — the SDN controller reroutes to a standby with a
   higher epoch and the Failure Coordinator runs the epoch change
   (§6.5).

Throughput over time is printed as a bar chart; the §6.7 invariants are
checked at the end.

Run:  python examples/fault_tolerance_demo.py
"""

from repro.harness import (
    ClusterConfig,
    ExperimentConfig,
    build_cluster,
    run_experiment,
)
from repro.harness.checkers import run_all_checks
from repro.harness.faults import FaultPlan
from repro.net.controller import ControllerConfig
from repro.sim.randomness import SplitRandom
from repro.store import ProcedureRegistry
from repro.workloads import (
    Partitioner,
    YCSBConfig,
    YCSBWorkload,
    register_ycsb_procedures,
)
from repro.workloads.ycsb import load_ycsb


def main() -> None:
    registry = ProcedureRegistry()
    register_ycsb_procedures(registry)
    partitioner = Partitioner(2)
    cluster = build_cluster(
        ClusterConfig(system="eris", n_shards=2,
                      controller=ControllerConfig(ping_interval=5e-3,
                                                  failure_threshold=3,
                                                  reroute_delay=20e-3)),
        registry, partitioner,
        loader=lambda stores, p: load_ycsb(stores, p, 1000))

    plan = (FaultPlan(cluster)
            .set_drop_rate_at(0.05, 0.02)     # 2% loss at t=50ms
            .set_drop_rate_at(0.10, 0.0)      # heal at t=100ms
            .kill_replica_at(0.12, shard=0, index=0)   # DL of shard 0
            .kill_sequencer_at(0.20))

    workload = YCSBWorkload(YCSBConfig(workload="srw", n_keys=1000),
                            partitioner, SplitRandom(5))
    result = run_experiment(cluster, workload, ExperimentConfig(
        n_clients=40, warmup=5e-3, duration=320e-3, drain=50e-3,
        timeseries_bucket=10e-3))

    print("injected faults:")
    for at, label in plan.injected:
        print(f"  t={at * 1000:6.1f} ms  {label}")

    print("\nthroughput over time:")
    peak = max(rate for _, rate in result.timeseries) or 1
    for t, rate in result.timeseries:
        bar = "#" * int(40 * rate / peak)
        print(f"  t={t * 1000:6.1f} ms {rate:10,.0f}/s {bar}")

    peer = sum(r.drops_recovered_from_peer
               for reps in cluster.replicas.values() for r in reps)
    print(f"\ndrop recoveries from shard peers: {peer}")
    print(f"view changes: shard-0 now in view "
          f"{max(r.view_num for r in cluster.replicas[0] if not r.crashed)}")
    print(f"sequencer failovers: {cluster.controller.failovers}; "
          f"epoch changes completed: {cluster.fc.epoch_changes_completed}")

    run_all_checks(cluster)
    print("\ninvariants hold through loss, DL failure, and sequencer "
          "failover")


if __name__ == "__main__":
    main()
