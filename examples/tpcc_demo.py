#!/usr/bin/env python
"""TPC-C on Eris vs. the layered baseline (§8.2 in miniature).

Loads a small TPC-C database with H-Store partitioning (items
replicated; everything else by warehouse), runs the standard
transaction mix with 10% distributed transactions on Eris and on
Lock-Store, and reports new-order throughput — the paper's headline
application-level result (Figure 12).

Run:  python examples/tpcc_demo.py
"""

from repro.harness import (
    ClusterConfig,
    ExperimentConfig,
    build_cluster,
    run_experiment,
)
from repro.harness.checkers import run_all_checks
from repro.sim.randomness import SplitRandom
from repro.store import ProcedureRegistry
from repro.workloads.tpcc import (
    TPCCConfig,
    TPCCWorkload,
    load_tpcc,
    register_tpcc_procedures,
    tpcc_partitioner,
)
from repro.workloads.tpcc.schema import TPCCScale, customer_key

SCALE = TPCCScale(n_warehouses=6, districts_per_warehouse=4,
                  customers_per_district=10, n_items=60)


def run_system(system: str):
    registry = ProcedureRegistry()
    register_tpcc_procedures(registry)
    partitioner = tpcc_partitioner(n_shards=3)
    cluster = build_cluster(
        ClusterConfig(system=system, n_shards=3),
        registry, partitioner,
        loader=lambda stores, p: load_tpcc(stores, p, SCALE))
    workload = TPCCWorkload(TPCCConfig(scale=SCALE, remote_fraction=0.10),
                            partitioner, SplitRandom(99))
    result = run_experiment(cluster, workload, ExperimentConfig(
        n_clients=100, warmup=4e-3, duration=10e-3, drain=5e-3,
        count_filter=lambda op: op.proc == "tpcc_new_order"))
    return cluster, result


def main() -> None:
    print("TPC-C, standard mix, 10% distributed transactions\n")
    results = {}
    for system in ("eris", "lockstore", "ntur"):
        cluster, result = run_system(system)
        results[system] = result
        print(f"{system:10s} new-order throughput: "
              f"{result.throughput:10,.0f}/s   "
              f"mean latency: {result.mean_latency * 1e6:7.1f} us   "
              f"aborted: {result.aborted} (1% invalid items)")
        if system == "eris":
            run_all_checks(cluster)
            # Peek at application state through a recon-style read.
            store = cluster.authoritative_store(
                cluster.partitioner.shard_of(customer_key(0, 0, 0)))
            customer = store.get(customer_key(0, 0, 0))
            print(f"{'':10s} sample customer after run: "
                  f"balance={customer['balance']:.2f} "
                  f"payments={customer['payment_cnt']}")

    speedup = results["eris"].throughput / results["lockstore"].throughput
    ceiling = results["eris"].throughput / results["ntur"].throughput
    print(f"\nEris vs Lock-Store: {speedup:.1f}x  (paper: 7.6x at scale)")
    print(f"Eris vs NT-UR ceiling: {ceiling:.2f}  (paper: within 3%)")


if __name__ == "__main__":
    main()
