#!/usr/bin/env python
"""Documentation drift gate.

The docs promise two kinds of machine-checkable facts, and this script
fails CI when either goes stale:

1. **CLI commands.** Every ``python -m repro ...`` /
   ``python -m repro.harness.cli ...`` invocation shown in the docs is
   resolved to its (sub)command and re-run with ``--help``; the parser
   must exist, and every ``--flag`` the doc shows must appear in that
   help text. A renamed subcommand or dropped flag fails here instead
   of silently rotting in the README.
2. **Relative links.** Every relative markdown link must point at a
   file that exists in the repository.

Usage::

    python tools/docs_check.py            # checks the default doc set
    python tools/docs_check.py FILE...    # checks specific files
"""

from __future__ import annotations

import os
import re
import shlex
import subprocess
import sys

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

#: Docs whose commands and links are contractual. PAPER/PAPERS/SNIPPETS
#: quote external material and are deliberately out of scope.
DEFAULT_DOCS = ("README.md", "ARCHITECTURE.md", "DESIGN.md",
                "EXPERIMENTS.md")

#: Modules whose command lines we verify.
MODULES = ("repro", "repro.harness.cli")

COMMAND_RE = re.compile(r"python\s+-m\s+(repro(?:\.harness\.cli)?)\s+(.*)")
LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
#: A subcommand word: lowercase letters/dashes only — operands such as
#: file paths (dots, slashes) terminate the subcommand chain.
WORD_RE = re.compile(r"^[a-z][a-z-]*$")


def _joined_lines(text: str) -> list[str]:
    """Physical lines with backslash continuations folded in."""
    lines: list[str] = []
    pending = ""
    for raw in text.splitlines():
        line = pending + raw.strip()
        if line.endswith("\\"):
            pending = line[:-1] + " "
            continue
        pending = ""
        lines.append(line)
    if pending:
        lines.append(pending)
    return lines


def extract_commands(text: str) -> list[tuple[str, list[str]]]:
    """(module, argv-after-module) for every documented invocation."""
    commands = []
    for line in _joined_lines(text):
        match = COMMAND_RE.search(line)
        if not match:
            continue
        module, rest = match.group(1), match.group(2)
        # Inline-code spans close with a backtick; prose may follow it.
        rest = rest.split("`", 1)[0].split("#", 1)[0].strip()
        try:
            tokens = shlex.split(rest)
        except ValueError:
            tokens = rest.split()
        commands.append((module, tokens))
    return commands


def check_command(module: str, tokens: list[str]) -> list[str]:
    """Resolve the subcommand chain, run ``--help``, verify flags."""
    chain: list[str] = []
    for token in tokens:
        if not WORD_RE.match(token):
            break
        chain.append(token)
    flags = sorted({token.split("=", 1)[0] for token in tokens
                    if token.startswith("--")})
    argv = [sys.executable, "-m", module, *chain, "--help"]
    env = dict(os.environ)
    env["PYTHONPATH"] = (os.path.join(REPO_ROOT, "src")
                         + os.pathsep + env.get("PYTHONPATH", ""))
    proc = subprocess.run(argv, capture_output=True, text=True, env=env,
                          cwd=REPO_ROOT, timeout=60)
    shown = " ".join([module, *chain])
    if proc.returncode != 0:
        detail = proc.stderr.strip().splitlines()[-1] if proc.stderr.strip() else "?"
        return [f"`python -m {shown} --help` exited {proc.returncode}: {detail}"]
    help_text = proc.stdout + proc.stderr
    return [f"`python -m {shown}` does not accept documented "
            f"flag {flag}" for flag in flags if flag not in help_text]


def check_links(doc_path: str, text: str) -> list[str]:
    problems = []
    base = os.path.dirname(doc_path)
    for match in LINK_RE.finditer(text):
        target = match.group(1)
        if target.startswith(("http://", "https://", "mailto:", "#")):
            continue
        rel = target.split("#", 1)[0]
        if not rel:
            continue
        if not os.path.exists(os.path.join(base, rel)):
            problems.append(f"dead relative link: ({target})")
    return problems


def check_doc(doc_path: str) -> list[str]:
    with open(doc_path, encoding="utf-8") as handle:
        text = handle.read()
    problems = check_links(doc_path, text)
    seen: set[tuple] = set()
    for module, tokens in extract_commands(text):
        key = (module, tuple(tokens))
        if key in seen:
            continue
        seen.add(key)
        problems.extend(check_command(module, tokens))
    return problems


def main(argv: list[str]) -> int:
    docs = argv or [os.path.join(REPO_ROOT, name)
                    for name in DEFAULT_DOCS]
    failures = 0
    for doc in docs:
        name = os.path.relpath(doc, REPO_ROOT)
        problems = check_doc(doc)
        if problems:
            failures += len(problems)
            print(f"{name}: {len(problems)} problem(s)")
            for problem in problems:
                print(f"  - {problem}")
        else:
            print(f"{name}: ok")
    if failures:
        print(f"DOCS CHECK FAILED: {failures} problem(s)")
        return 1
    print("docs check ok")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
